"""Timestepped streaming campaigns with per-epoch path churn."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.scenarios.streaming import (
    ChurnEvent,
    StreamingCampaign,
    random_churn_schedule,
)


class TestChurnEvent:
    def test_churns_flag(self):
        assert not ChurnEvent().churns
        assert ChurnEvent(fail=(1,)).churns
        assert ChurnEvent(recover=(2,)).churns


class TestRandomChurnSchedule:
    def test_deterministic_under_seed(self):
        a = random_churn_schedule(10, 8, churn_rate=0.3, rng=7)
        b = random_churn_schedule(10, 8, churn_rate=0.3, rng=7)
        assert a == b

    def test_min_live_respected(self):
        schedule = random_churn_schedule(
            6, 20, churn_rate=1.0, recover_rate=0.0, min_live=3, rng=0
        )
        live = set(range(6))
        for event in schedule:
            live.difference_update(event.fail)
            live.update(event.recover)
            assert len(live) >= 3

    def test_failed_paths_recover(self):
        schedule = random_churn_schedule(
            8, 30, churn_rate=0.5, recover_rate=1.0, rng=1
        )
        recovered = {i for event in schedule for i in event.recover}
        assert recovered  # with recover_rate=1 every failure comes back

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_paths": 0, "num_epochs": 3},
            {"num_paths": 4, "num_epochs": 0},
            {"num_paths": 4, "num_epochs": 3, "churn_rate": 1.5},
            {"num_paths": 4, "num_epochs": 3, "min_live": 0},
            {"num_paths": 4, "num_epochs": 3, "min_live": 5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            random_churn_schedule(**kwargs)


class TestHonestStream:
    def test_no_alarms_without_attackers(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        schedule = random_churn_schedule(
            fig1_scenario.path_set.num_paths, 8, churn_rate=0.2, rng=3
        )
        result = campaign.run(schedule, rng=3)
        assert result.num_epochs == 8
        assert result.attacked_epochs == ()
        assert result.detected_epochs == ()
        assert result.false_alarm_epochs == ()
        assert result.detection_latency() is None

    def test_incremental_fraction_measured(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        campaign.detector.system.rank  # warm: churn should patch, not rebuild
        schedule = random_churn_schedule(
            fig1_scenario.path_set.num_paths, 10, churn_rate=0.2, rng=5
        )
        result = campaign.run(schedule, rng=5)
        fraction = result.incremental_fraction()
        assert fraction is not None
        assert fraction > 0.0

    def test_no_churn_schedule_yields_none_fraction(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        result = campaign.run([ChurnEvent()] * 3, rng=0)
        assert result.incremental_fraction() is None
        assert all(e.incremental is None for e in result.epochs)


class TestAttackedStream:
    def test_naive_attack_detected(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario, attacker_nodes=["B", "C"])
        result = campaign.run([ChurnEvent()] * 4, rng=0)
        assert result.attacked_epochs == (0, 1, 2, 3)
        # The naive per-path delay attack is inconsistent by construction.
        assert 0 in result.detected_epochs
        assert result.detection_latency() == 0

    def test_replan_only_when_support_changes(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario, attacker_nodes=["B", "C"])
        result = campaign.run([ChurnEvent()] * 4, rng=0)
        # Static path set: exactly one plan, carried across every epoch.
        assert result.replan_count == 1
        assert result.epochs[0].replanned
        assert not any(e.replanned for e in result.epochs[1:])

    def test_churn_forces_replan(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario, attacker_nodes=["B", "C"])
        support = sorted(campaign._base_support)
        assert support, "attackers B,C must touch at least one path"
        target = support[0]
        schedule = [
            ChurnEvent(),
            ChurnEvent(fail=(target,)),
            ChurnEvent(recover=(target,)),
        ]
        result = campaign.run(schedule, rng=0)
        assert result.replan_count >= 2  # initial plan + post-churn replan

    def test_active_epochs_subset(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario, attacker_nodes=["B", "C"])
        result = campaign.run([ChurnEvent()] * 5, active_epochs=[1, 3], rng=0)
        assert result.attacked_epochs == (1, 3)

    def test_active_epochs_out_of_range_rejected(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario, attacker_nodes=["B"])
        with pytest.raises(ValidationError, match="active epoch"):
            campaign.run([ChurnEvent()] * 2, active_epochs=[5], rng=0)


class TestChurnBookkeeping:
    def test_live_paths_track_base_indices(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        num = fig1_scenario.path_set.num_paths
        schedule = [ChurnEvent(fail=(0,)), ChurnEvent(recover=(0,))]
        result = campaign.run(schedule, rng=0)
        assert result.epochs[0].live_paths == tuple(range(1, num))
        # The recovered path re-joins at the end of the row order.
        assert result.epochs[1].live_paths == tuple(range(1, num)) + (0,)

    def test_failing_dead_path_rejected(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        schedule = [ChurnEvent(fail=(0,)), ChurnEvent(fail=(0,))]
        with pytest.raises(ValidationError, match="not live"):
            campaign.run(schedule, rng=0)

    def test_recovering_live_path_rejected(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        with pytest.raises(ValidationError, match="is live"):
            campaign.run([ChurnEvent(recover=(0,))], rng=0)

    def test_empty_schedule_rejected(self, fig1_scenario):
        campaign = StreamingCampaign(fig1_scenario)
        with pytest.raises(ValidationError, match="at least one epoch"):
            campaign.run([], rng=0)

    def test_noise_model_applied(self, fig1_scenario):
        spikes = lambda rng, size: np.full(size, 1000.0)  # noqa: E731
        campaign = StreamingCampaign(fig1_scenario, noise_model=spikes)
        result = campaign.run([ChurnEvent()], rng=0)
        # A 1000ms spike on every path is wildly inconsistent: false alarm.
        assert result.false_alarm_epochs == (0,)
