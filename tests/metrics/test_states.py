"""Tests for the link-state classifier (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.metrics.states import (
    LinkState,
    StateThresholds,
    classify_metric,
    classify_vector,
)


class TestThresholds:
    def test_paper_defaults(self):
        t = StateThresholds()
        assert t.lower == 100.0
        assert t.upper == 800.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            StateThresholds(lower=-1.0, upper=5.0)
        with pytest.raises(ValidationError):
            StateThresholds(lower=10.0, upper=5.0)
        with pytest.raises(ValidationError):
            StateThresholds(lower=float("nan"), upper=5.0)

    def test_two_state_factory(self):
        t = StateThresholds.two_state(100.0)
        assert t.is_two_state
        assert t.lower == t.upper == 100.0

    def test_three_state_is_not_two_state(self):
        assert not StateThresholds().is_two_state


class TestClassification:
    @pytest.mark.parametrize(
        ("value", "state"),
        [
            (0.0, LinkState.NORMAL),
            (99.999, LinkState.NORMAL),
            (100.0, LinkState.UNCERTAIN),  # boundary belongs to uncertain
            (500.0, LinkState.UNCERTAIN),
            (800.0, LinkState.UNCERTAIN),
            (800.001, LinkState.ABNORMAL),
            (1e9, LinkState.ABNORMAL),
        ],
    )
    def test_definition_1(self, value, state):
        assert classify_metric(value, StateThresholds()) is state

    def test_two_state_boundary(self):
        t = StateThresholds.two_state(100.0)
        assert t.classify(99.0) is LinkState.NORMAL
        assert t.classify(100.0) is LinkState.UNCERTAIN  # single-point band
        assert t.classify(101.0) is LinkState.ABNORMAL

    def test_vector_classification(self):
        states = classify_vector(np.array([5.0, 500.0, 900.0]), StateThresholds())
        assert states == [LinkState.NORMAL, LinkState.UNCERTAIN, LinkState.ABNORMAL]

    def test_vector_requires_1d(self):
        with pytest.raises(ValidationError):
            classify_vector(np.eye(2), StateThresholds())

    def test_state_str(self):
        assert str(LinkState.ABNORMAL) == "abnormal"


@settings(max_examples=100, deadline=None)
@given(
    st.floats(0, 1000, allow_nan=False),
    st.floats(0, 500),
    st.floats(0, 500),
)
def test_classification_total_and_exclusive(value, lower, width):
    """Every value gets exactly one state, consistent with the bounds."""
    thresholds = StateThresholds(lower=lower, upper=lower + width)
    state = thresholds.classify(value)
    if state is LinkState.NORMAL:
        assert value < thresholds.lower
    elif state is LinkState.ABNORMAL:
        assert value > thresholds.upper
    else:
        assert thresholds.lower <= value <= thresholds.upper
