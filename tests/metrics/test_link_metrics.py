"""Tests for metric generation and loss-domain conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.metrics.link_metrics import (
    constant_delay_metrics,
    delivery_ratio_to_log_metric,
    log_metric_to_delivery_ratio,
    loss_rate_to_log_metric,
    uniform_delay_metrics,
)
from repro.topology.generators.simple import paper_example_network


class TestDelayGeneration:
    def test_uniform_range_and_shape(self):
        topo = paper_example_network()
        x = uniform_delay_metrics(topo, 1.0, 20.0, rng=0)
        assert x.shape == (10,)
        assert np.all(x >= 1.0) and np.all(x <= 20.0)

    def test_deterministic(self):
        topo = paper_example_network()
        assert np.array_equal(
            uniform_delay_metrics(topo, rng=3), uniform_delay_metrics(topo, rng=3)
        )

    def test_invalid_range(self):
        topo = paper_example_network()
        with pytest.raises(ValidationError):
            uniform_delay_metrics(topo, 5.0, 2.0)
        with pytest.raises(ValidationError):
            uniform_delay_metrics(topo, -1.0, 2.0)

    def test_constant(self):
        topo = paper_example_network()
        x = constant_delay_metrics(topo, 7.5)
        assert np.all(x == 7.5)

    def test_constant_negative_rejected(self):
        with pytest.raises(ValidationError):
            constant_delay_metrics(paper_example_network(), -1.0)


class TestLossDomain:
    def test_perfect_link_maps_to_zero(self):
        assert delivery_ratio_to_log_metric(np.array([1.0]))[0] == 0.0

    def test_worse_links_have_larger_metric(self):
        metrics = delivery_ratio_to_log_metric(np.array([0.9, 0.5, 0.1]))
        assert metrics[0] < metrics[1] < metrics[2]

    def test_additivity_is_multiplicativity(self):
        """Sum of log metrics equals the metric of the product ratio."""
        ratios = np.array([0.9, 0.8])
        total = delivery_ratio_to_log_metric(np.array([0.9 * 0.8]))[0]
        assert total == pytest.approx(delivery_ratio_to_log_metric(ratios).sum())

    def test_round_trip(self):
        ratios = np.array([0.99, 0.5, 0.123])
        back = log_metric_to_delivery_ratio(delivery_ratio_to_log_metric(ratios))
        assert np.allclose(back, ratios)

    def test_loss_rate_conversion(self):
        assert loss_rate_to_log_metric(np.array([0.0]))[0] == 0.0
        assert loss_rate_to_log_metric(np.array([0.5]))[0] == pytest.approx(np.log(2))

    @pytest.mark.parametrize("bad", [[0.0], [1.5], [-0.1]])
    def test_ratio_domain_enforced(self, bad):
        with pytest.raises(ValidationError):
            delivery_ratio_to_log_metric(np.array(bad))

    @pytest.mark.parametrize("bad", [[1.0], [-0.1]])
    def test_loss_domain_enforced(self, bad):
        with pytest.raises(ValidationError):
            loss_rate_to_log_metric(np.array(bad))

    def test_negative_log_metric_rejected(self):
        with pytest.raises(ValidationError):
            log_metric_to_delivery_ratio(np.array([-0.5]))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8))
def test_loss_round_trip_property(ratios):
    arr = np.asarray(ratios)
    back = log_metric_to_delivery_ratio(delivery_ratio_to_log_metric(arr))
    assert np.allclose(back, arr, rtol=1e-10)
