"""Shared fixtures.

Expensive objects (the Fig. 1 scenario, a small ISP scenario) are
session-scoped; tests must not mutate them.  Tests that need mutation
build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contracts import disable_contracts, enable_contracts
from repro.scenarios.scenario import Scenario
from repro.scenarios.simple_network import paper_fig1_scenario
from repro.topology.generators.isp import synthetic_rocketfuel
from repro.topology.generators.simple import (
    grid_topology,
    ladder_topology,
    paper_example_network,
)


@pytest.fixture(scope="session", autouse=True)
def _contracts_active():
    """Run the whole suite with the algebra contracts validating.

    Production keeps the decorators as no-ops; under pytest every public
    entry point checks its ``y = R x`` invariants (0/1 routing matrices,
    Constraint-1 manipulation support, ordered state bands).
    """
    enable_contracts()
    yield
    disable_contracts()


@pytest.fixture()
def rng():
    """A deterministic RNG, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def paper_topology():
    """A fresh Fig. 1 topology (mutable per test)."""
    return paper_example_network()


@pytest.fixture(scope="session")
def fig1_scenario():
    """The deterministic Fig. 1 scenario (shared; do not mutate)."""
    return paper_fig1_scenario()


@pytest.fixture(scope="session")
def fig1_context(fig1_scenario):
    """Attack context for the canonical attackers B and C (shared)."""
    return fig1_scenario.attack_context(["B", "C"])


@pytest.fixture(scope="session")
def small_isp_scenario():
    """A small but non-trivial ISP scenario (shared; do not mutate)."""
    topology = synthetic_rocketfuel(
        "mini",
        backbone_nodes=5,
        pops_per_backbone=1,
        access_per_pop=(1, 2),
        extra_backbone_chords=2,
        seed=4,
    )
    # max_per_pair=15 makes this scenario fully identifiable (rank 25/25),
    # which several invariants (e.g. perfect cut => success) rely on.
    return Scenario.build(topology, rng=4, max_per_pair=15, name="mini-isp")


@pytest.fixture(scope="session")
def ladder_scenario():
    """A ladder scenario with good path diversity (shared; do not mutate)."""
    topology = ladder_topology(4)
    monitors = [("top", 0), ("bot", 0), ("top", 3), ("bot", 3)]
    return Scenario.build(topology, monitors=monitors, rng=9, name="ladder4")


@pytest.fixture()
def grid():
    """A fresh 3x3 grid topology."""
    return grid_topology(3, 3)
