"""Tests for ASCII table rendering."""

import pytest

from repro.reporting.tables import format_kv, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["longer", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert lines[1].startswith("---")
        assert "longer" in lines[3]
        # Header rule covers the widest cell.
        assert len(lines[1].split("  ")[0]) == len("longer")

    def test_nan_rendered_as_na(self):
        text = format_table(["v"], [[float("nan")]])
        assert "n/a" in text

    def test_float_precision(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert text.splitlines()[0] == "a"


class TestFormatKv:
    def test_title_and_pairs(self):
        text = format_kv("Scenario", {"nodes": 7, "rate": 0.5})
        lines = text.splitlines()
        assert lines[0] == "Scenario"
        assert lines[1] == "========"
        assert any("nodes" in line and "7" in line for line in lines)

    def test_empty_mapping(self):
        text = format_kv("X", {})
        assert text.splitlines() == ["X", "="]
