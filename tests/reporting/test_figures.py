"""Tests for figure-series formatting."""

from repro.reporting.figures import (
    format_detection_table,
    format_fig4_series,
    format_link_series,
    format_success_bins,
)
from repro.scenarios.simple_network import chosen_victim_case_study


class TestLinkSeries:
    def test_roles_annotated(self):
        text = format_link_series(
            [5.0, 900.0],
            ["normal", "abnormal"],
            title="T",
            victim_links=[1],
            controlled_links=[0],
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "victim" in text
        assert "attacker-controlled" in text

    def test_one_based_numbers_shown(self):
        text = format_link_series([5.0], ["normal"], title="T")
        data_row = text.splitlines()[3]  # title, header, rule, then data
        assert data_row.split()[0] == "1"  # paper numbering
        assert data_row.split()[1] == "0"  # library index


class TestFig4Series:
    def test_renders_case_study(self):
        record = chosen_victim_case_study()
        text = format_fig4_series(record, title="Fig 4")
        assert "Fig 4" in text
        assert "damage" in text
        assert "mean path measurement" in text
        assert "victim" in text

    def test_infeasible_record(self):
        from repro.attacks.base import AttackOutcome

        record = {"feasible": False, "outcome": AttackOutcome.infeasible("x", "nope")}
        text = format_fig4_series(record, title="T")
        assert "INFEASIBLE" in text


class TestAggregates:
    def test_success_bins(self):
        bins = [
            {"lo": 0.0, "hi": 0.5, "mid": 0.25, "count": 3, "rate": 0.5},
            {"lo": 0.5, "hi": 1.0, "mid": 0.75, "count": 0, "rate": float("nan")},
        ]
        text = format_success_bins(bins, title="Fig 7")
        assert "0.0-0.5" in text
        assert "n/a" in text

    def test_detection_table(self):
        cells = [
            {
                "strategy": "chosen-victim",
                "cut": "perfect",
                "num_successful_attacks": 10,
                "detection_ratio": 0.0,
            }
        ]
        text = format_detection_table(cells, title="Fig 9")
        assert "chosen-victim" in text
        assert "perfect" in text
