"""Tests for candidate enumeration and rank-greedy path selection."""

import numpy as np
import pytest

from repro.exceptions import IdentifiabilityError, ValidationError
from repro.routing.paths import MeasurementPath
from repro.routing.selection import (
    enumerate_candidate_paths,
    select_identifiable_paths,
    select_paths_rank_greedy,
)
from repro.topology.generators.isp import synthetic_rocketfuel
from repro.topology.generators.simple import (
    grid_topology,
    paper_example_network,
    path_topology,
)
from repro.topology.graph import Topology
from repro.utils.linalg import column_rank


class TestEnumerate:
    def test_all_pairs_covered_on_paper_network(self):
        topo = paper_example_network()
        candidates = enumerate_candidate_paths(topo, ["M1", "M2", "M3"])
        endpoints = {frozenset((p.source, p.target)) for p in candidates}
        assert endpoints == {
            frozenset(("M1", "M2")),
            frozenset(("M1", "M3")),
            frozenset(("M2", "M3")),
        }

    def test_max_per_pair_cap(self):
        topo = paper_example_network()
        candidates = enumerate_candidate_paths(topo, ["M1", "M2"], max_per_pair=3)
        assert len(candidates) == 3

    def test_exhaustive_shortest_first(self):
        topo = paper_example_network()
        candidates = enumerate_candidate_paths(
            topo, ["M1", "M2"], max_per_pair=5, exhaustive=True
        )
        lengths = [p.num_hops for p in candidates]
        assert lengths == sorted(lengths)

    def test_ksp_mode_on_larger_graph(self):
        topo = synthetic_rocketfuel("mini", backbone_nodes=4, pops_per_backbone=1, seed=1)
        candidates = enumerate_candidate_paths(
            topo, ["bb0", "bb1", "bb2"], max_per_pair=4, exhaustive=False
        )
        assert 0 < len(candidates) <= 3 * 4

    def test_disconnected_pair_skipped(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_link("c", "d")
        candidates = enumerate_candidate_paths(topo, ["a", "b", "c"])
        endpoints = {frozenset((p.source, p.target)) for p in candidates}
        assert endpoints == {frozenset(("a", "b"))}

    def test_max_hops_filter(self):
        topo = grid_topology(3, 3)
        candidates = enumerate_candidate_paths(
            topo, [(0, 0), (2, 2)], max_hops=4, max_per_pair=50
        )
        assert all(p.num_hops <= 4 for p in candidates)

    def test_needs_two_monitors(self):
        with pytest.raises(ValidationError):
            enumerate_candidate_paths(paper_example_network(), ["M1"])


class TestRankGreedy:
    def test_reaches_full_rank_on_paper_network(self):
        topo = paper_example_network()
        candidates = enumerate_candidate_paths(topo, ["M1", "M2", "M3"], max_per_pair=30)
        selected = select_paths_rank_greedy(topo, candidates)
        assert column_rank(selected.routing_matrix()) == topo.num_links
        # Minimality of the greedy core: exactly rank many paths kept.
        assert selected.num_paths == topo.num_links

    def test_every_kept_path_was_necessary(self):
        topo = paper_example_network()
        candidates = enumerate_candidate_paths(topo, ["M1", "M2", "M3"], max_per_pair=30)
        selected = select_paths_rank_greedy(topo, candidates)
        matrix = selected.routing_matrix()
        full_rank = column_rank(matrix)
        for drop in range(matrix.shape[0]):
            reduced = np.delete(matrix, drop, axis=0)
            assert column_rank(reduced) < full_rank

    def test_target_rank_stops_early(self):
        topo = paper_example_network()
        candidates = enumerate_candidate_paths(topo, ["M1", "M2", "M3"], max_per_pair=30)
        selected = select_paths_rank_greedy(topo, candidates, target_rank=4)
        assert selected.num_paths == 4

    def test_duplicate_candidates_not_kept_twice(self):
        topo = path_topology(3)
        path = MeasurementPath(topo, [0, 1, 2])
        selected = select_paths_rank_greedy(topo, [path, path, path])
        assert selected.num_paths == 1


class TestSelectIdentifiable:
    def test_redundancy_rows_added(self):
        topo = paper_example_network()
        ps = select_identifiable_paths(topo, ["M1", "M2", "M3"], redundancy=4, rng=0)
        matrix = ps.routing_matrix()
        assert column_rank(matrix) == topo.num_links
        assert matrix.shape[0] == topo.num_links + 4

    def test_zero_redundancy(self):
        topo = paper_example_network()
        ps = select_identifiable_paths(topo, ["M1", "M2", "M3"], redundancy=0, rng=0)
        assert ps.num_paths == topo.num_links

    def test_negative_redundancy_rejected(self):
        with pytest.raises(ValidationError):
            select_identifiable_paths(
                paper_example_network(), ["M1", "M2"], redundancy=-1
            )

    def test_deterministic_for_seed(self):
        topo = paper_example_network()
        a = select_identifiable_paths(topo, ["M1", "M2", "M3"], rng=5)
        b = select_identifiable_paths(topo, ["M1", "M2", "M3"], rng=5)
        assert [p.nodes for p in a] == [p.nodes for p in b]

    def test_require_full_rank_raises_when_impossible(self):
        # Two monitors at the ends of a path cannot separate interior links.
        topo = path_topology(4)
        with pytest.raises(IdentifiabilityError):
            select_identifiable_paths(topo, [0, 3], require_full_rank=True, rng=0)

    def test_partial_rank_tolerated_by_default(self):
        topo = path_topology(4)
        ps = select_identifiable_paths(topo, [0, 3], rng=0)
        assert ps.num_paths >= 1
