"""Tests for MeasurementPath and PathSet."""

import numpy as np
import pytest

from repro.exceptions import InvalidPathError, LinkNotFoundError, ValidationError
from repro.routing.paths import MeasurementPath, PathSet
from repro.topology.generators.simple import paper_example_network


@pytest.fixture()
def topo():
    return paper_example_network()


class TestMeasurementPath:
    def test_link_resolution(self, topo):
        path = MeasurementPath(topo, ["M1", "A", "C", "D", "M2"])
        assert path.link_indices == (0, 3, 6, 9)

    def test_endpoints(self, topo):
        path = MeasurementPath(topo, ["M1", "A", "B", "M3"])
        assert path.source == "M1"
        assert path.target == "M3"
        assert path.num_hops == 3
        assert path.interior_nodes == ("A", "B")

    def test_too_short(self, topo):
        with pytest.raises(InvalidPathError):
            MeasurementPath(topo, ["M1"])

    def test_repeated_node_rejected(self, topo):
        with pytest.raises(InvalidPathError, match="twice"):
            MeasurementPath(topo, ["M1", "A", "B", "A"])

    def test_non_adjacent_rejected(self, topo):
        with pytest.raises(InvalidPathError, match="not adjacent"):
            MeasurementPath(topo, ["M1", "D"])

    def test_contains_node(self, topo):
        path = MeasurementPath(topo, ["M1", "A", "C", "M2"])
        assert path.contains_node("C")
        assert path.contains_node("M1")  # endpoints count
        assert not path.contains_node("B")

    def test_contains_any_node(self, topo):
        path = MeasurementPath(topo, ["M1", "A", "C", "M2"])
        assert path.contains_any_node(["B", "C"])
        assert not path.contains_any_node(["B", "D"])

    def test_contains_link(self, topo):
        path = MeasurementPath(topo, ["M1", "A", "C", "M2"])
        assert path.contains_link(0)
        assert not path.contains_link(9)
        assert path.contains_any_link([9, 3])

    def test_reverse_equals_forward(self, topo):
        fwd = MeasurementPath(topo, ["M1", "A", "C", "M2"])
        rev = fwd.reversed(topo)
        assert fwd == rev
        assert hash(fwd) == hash(rev)
        assert rev.source == "M2"

    def test_distinct_paths_not_equal(self, topo):
        a = MeasurementPath(topo, ["M1", "A", "C", "M2"])
        b = MeasurementPath(topo, ["M1", "A", "B", "M3"])
        assert a != b

    def test_len_is_node_count(self, topo):
        assert len(MeasurementPath(topo, ["M1", "A", "B", "M3"])) == 4


class TestPathSet:
    def test_from_node_sequences(self, topo):
        ps = PathSet.from_node_sequences(
            topo, [["M1", "A", "C", "M2"], ["M3", "D", "M2"]]
        )
        assert ps.num_paths == 2
        assert len(ps) == 2

    def test_routing_matrix_entries(self, topo):
        ps = PathSet.from_node_sequences(topo, [["M1", "A", "C", "M2"]])
        matrix = ps.routing_matrix()
        assert matrix.shape == (1, 10)
        expected = np.zeros(10)
        expected[[0, 3, 7]] = 1.0
        assert np.array_equal(matrix[0], expected)

    def test_paths_containing_node(self, topo):
        ps = PathSet.from_node_sequences(
            topo, [["M1", "A", "C", "M2"], ["M3", "D", "M2"], ["M3", "B", "A", "M1"]]
        )
        assert ps.paths_containing_node("A") == [0, 2]
        assert ps.paths_containing_any_node(["D", "B"]) == [1, 2]

    def test_paths_containing_link(self, topo):
        ps = PathSet.from_node_sequences(
            topo, [["M1", "A", "C", "M2"], ["M3", "D", "M2"]]
        )
        assert ps.paths_containing_link(9) == [1]
        assert ps.paths_containing_any_link({0, 9}) == [0, 1]

    def test_path_index_bounds(self, topo):
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        assert ps.path(0).source == "M3"
        with pytest.raises(ValidationError):
            ps.path(1)

    def test_monitor_pairs(self, topo):
        ps = PathSet.from_node_sequences(
            topo, [["M1", "A", "C", "M2"], ["M2", "C", "A", "M1"], ["M3", "D", "M2"]]
        )
        assert ps.monitor_pairs() == {
            frozenset(("M1", "M2")),
            frozenset(("M2", "M3")),
        }

    def test_append_validates_links(self, topo):
        other = paper_example_network()
        path = MeasurementPath(other, ["M3", "D", "M2"])
        ps = PathSet(topo)
        ps.append(path)  # same structure, indices valid
        assert ps.num_paths == 1

    def test_empty_routing_matrix_shape(self, topo):
        ps = PathSet(topo)
        assert ps.routing_matrix().shape == (0, 10)
