"""Tests for the presence-aware path selection (Section VI defence)."""

import pytest

from repro.exceptions import ValidationError
from repro.monitors.placement import max_node_presence_ratio
from repro.routing.selection import (
    select_identifiable_paths,
    select_paths_min_presence,
)
from repro.topology.generators.extra import fat_tree_topology
from repro.topology.generators.simple import grid_topology, paper_example_network
from repro.utils.linalg import column_rank


@pytest.fixture()
def grid_setup():
    topo = grid_topology(4, 4)
    monitors = [
        (0, 0), (0, 3), (3, 0), (3, 3), (1, 1), (2, 2), (0, 1),
        (1, 0), (2, 3), (3, 2), (0, 2), (2, 0), (1, 3), (3, 1),
    ]
    return topo, monitors


class TestMinPresenceSelection:
    def test_reaches_same_rank_as_plain(self, grid_setup):
        topo, monitors = grid_setup
        plain = select_identifiable_paths(topo, monitors, rng=0)
        flat = select_paths_min_presence(topo, monitors, rng=0)
        assert column_rank(flat.routing_matrix()) == column_rank(plain.routing_matrix())
        assert column_rank(flat.routing_matrix()) == topo.num_links

    def test_lowers_max_presence_on_grid(self, grid_setup):
        topo, monitors = grid_setup
        plain = select_identifiable_paths(topo, monitors, rng=0)
        flat = select_paths_min_presence(topo, monitors, rng=0)
        assert max_node_presence_ratio(flat) < max_node_presence_ratio(plain)

    def test_lowers_max_presence_on_fat_tree(self):
        topo = fat_tree_topology(4)
        monitors = [n for n in topo.nodes() if n[0] in ("edge", "core")]
        plain = select_identifiable_paths(topo, monitors, rng=0)
        flat = select_paths_min_presence(topo, monitors, rng=0)
        assert max_node_presence_ratio(flat) < max_node_presence_ratio(plain)

    def test_redundancy_rows_added(self, grid_setup):
        topo, monitors = grid_setup
        flat = select_paths_min_presence(topo, monitors, redundancy=4, rng=0)
        assert flat.num_paths == topo.num_links + 4

    def test_zero_redundancy(self):
        topo = paper_example_network()
        flat = select_paths_min_presence(topo, ["M1", "M2", "M3"], redundancy=0, rng=0)
        assert flat.num_paths == topo.num_links
        assert column_rank(flat.routing_matrix()) == topo.num_links

    def test_no_duplicate_paths(self, grid_setup):
        topo, monitors = grid_setup
        flat = select_paths_min_presence(topo, monitors, rng=0)
        keys = [p.key() for p in flat]
        assert len(keys) == len(set(keys))

    def test_deterministic(self, grid_setup):
        topo, monitors = grid_setup
        a = select_paths_min_presence(topo, monitors, rng=5)
        b = select_paths_min_presence(topo, monitors, rng=5)
        assert [p.nodes for p in a] == [p.nodes for p in b]

    def test_negative_redundancy_rejected(self, grid_setup):
        topo, monitors = grid_setup
        with pytest.raises(ValidationError):
            select_paths_min_presence(topo, monitors, redundancy=-1)
