"""Tests for routing-matrix identifiability analysis."""

import numpy as np

from repro.routing.paths import PathSet
from repro.routing.routing_matrix import (
    identifiability_report,
    identifiable_links,
    routing_matrix,
)
from repro.topology.generators.simple import paper_example_network, path_topology


class TestIdentifiableLinks:
    def test_full_rank_identifies_all(self):
        assert identifiable_links(np.eye(4)) == [0, 1, 2, 3]

    def test_sum_only_identifies_nothing(self):
        # One path over two links: only their sum is known.
        assert identifiable_links(np.array([[1.0, 1.0]])) == []

    def test_partial_identifiability(self):
        # x0 alone on a path, x1+x2 only in sum.
        mat = np.array([[1.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        assert identifiable_links(mat) == [0]

    def test_difference_resolves_chain(self):
        # Paths {0,1} and {1} identify both links.
        mat = np.array([[1.0, 1.0], [0.0, 1.0]])
        assert identifiable_links(mat) == [0, 1]


class TestReport:
    def test_fig1_fully_identifiable(self, fig1_scenario):
        report = identifiability_report(fig1_scenario.path_set)
        assert report.full_column_rank
        assert report.rank == 10
        assert report.num_paths == 23
        assert report.redundancy == 13
        assert report.coverage() == 1.0
        assert report.unidentifiable == ()

    def test_chain_not_identifiable_without_interior_monitor(self):
        topo = path_topology(3)  # links 0-1, 1-2; monitors at ends only
        ps = PathSet.from_node_sequences(topo, [[0, 1, 2]])
        report = identifiability_report(ps)
        assert not report.full_column_rank
        assert report.rank == 1
        assert report.identifiable == ()
        assert report.coverage() == 0.0

    def test_routing_matrix_helper_matches_method(self, fig1_scenario):
        assert np.array_equal(
            routing_matrix(fig1_scenario.path_set),
            fig1_scenario.path_set.routing_matrix(),
        )

    def test_redundancy_is_rows_minus_rank(self):
        topo = path_topology(3)
        ps = PathSet.from_node_sequences(topo, [[0, 1, 2], [0, 1, 2][::-1]])
        report = identifiability_report(ps)
        assert report.redundancy == report.num_paths - report.rank
