"""Tests for shortest paths, Yen's algorithm, and path enumeration."""

import networkx as nx
import pytest

from repro.exceptions import NoPathError, ValidationError
from repro.routing.ksp import all_simple_paths, k_shortest_paths, shortest_path
from repro.topology.generators.isp import synthetic_rocketfuel
from repro.topology.generators.simple import (
    grid_topology,
    paper_example_network,
    path_topology,
    ring_topology,
)
from repro.topology.graph import Topology


class TestShortestPath:
    def test_direct_neighbor(self):
        topo = path_topology(3)
        assert shortest_path(topo, 0, 1) == [0, 1]

    def test_path_graph(self):
        topo = path_topology(5)
        assert shortest_path(topo, 0, 4) == [0, 1, 2, 3, 4]

    def test_ring_takes_short_side(self):
        topo = ring_topology(6)
        path = shortest_path(topo, 0, 2)
        assert path == [0, 1, 2]

    def test_banned_node_forces_detour(self):
        topo = ring_topology(6)
        path = shortest_path(topo, 0, 2, banned_nodes=frozenset({1}))
        assert path == [0, 5, 4, 3, 2]

    def test_banned_link_forces_detour(self):
        topo = ring_topology(4)
        direct = topo.link_between(0, 1).index
        path = shortest_path(topo, 0, 1, banned_links=frozenset({direct}))
        assert path == [0, 3, 2, 1]

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_link("c", "d")
        with pytest.raises(NoPathError):
            shortest_path(topo, "a", "c")

    def test_same_endpoints_rejected(self):
        topo = path_topology(3)
        with pytest.raises(ValidationError):
            shortest_path(topo, 1, 1)

    def test_unknown_node(self):
        topo = path_topology(3)
        with pytest.raises(NoPathError):
            shortest_path(topo, 0, 99)


class TestKShortestPaths:
    def test_first_is_shortest(self):
        topo = paper_example_network()
        paths = k_shortest_paths(topo, "M1", "M2", 3)
        assert paths[0] == shortest_path(topo, "M1", "M2")

    def test_lengths_non_decreasing(self):
        topo = grid_topology(3, 3)
        paths = k_shortest_paths(topo, (0, 0), (2, 2), 8)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_all_paths_simple_and_valid(self):
        topo = paper_example_network()
        for path in k_shortest_paths(topo, "M1", "M3", 10):
            assert len(set(path)) == len(path)
            for u, v in zip(path, path[1:]):
                assert topo.has_link(u, v)

    def test_paths_are_distinct(self):
        topo = grid_topology(3, 3)
        paths = k_shortest_paths(topo, (0, 0), (2, 2), 10)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_fewer_than_k_when_exhausted(self):
        topo = path_topology(4)
        assert len(k_shortest_paths(topo, 0, 3, 5)) == 1

    def test_matches_networkx_shortest_simple_paths(self):
        """Cross-check path lengths against networkx on several graphs."""
        for topo in [paper_example_network(), grid_topology(3, 3), ring_topology(7)]:
            graph = topo.to_networkx()
            nodes = topo.nodes()
            source, target = nodes[0], nodes[-1]
            ours = k_shortest_paths(topo, source, target, 12)
            theirs = []
            for i, p in enumerate(nx.shortest_simple_paths(graph, source, target)):
                if i >= 12:
                    break
                theirs.append(p)
            assert [len(p) for p in ours] == [len(p) for p in theirs]

    def test_matches_networkx_on_isp(self):
        topo = synthetic_rocketfuel("mini", backbone_nodes=5, pops_per_backbone=1, seed=2)
        graph = topo.to_networkx()
        ours = k_shortest_paths(topo, "bb0", "bb2", 15)
        gen = nx.shortest_simple_paths(graph, "bb0", "bb2")
        theirs = [p for _, p in zip(range(15), gen)]
        assert [len(p) for p in ours] == [len(p) for p in theirs]

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            k_shortest_paths(path_topology(3), 0, 2, 0)


class TestAllSimplePaths:
    def test_counts_match_networkx(self):
        topo = paper_example_network()
        ours = list(all_simple_paths(topo, "M1", "M2"))
        theirs = list(nx.all_simple_paths(topo.to_networkx(), "M1", "M2"))
        assert len(ours) == len(theirs)
        assert {tuple(p) for p in ours} == {tuple(p) for p in theirs}

    def test_cutoff_respected(self):
        topo = grid_topology(3, 3)
        for path in all_simple_paths(topo, (0, 0), (2, 2), max_hops=4):
            assert len(path) - 1 <= 4

    def test_cutoff_matches_networkx(self):
        topo = grid_topology(3, 3)
        ours = {tuple(p) for p in all_simple_paths(topo, (0, 0), (2, 2), max_hops=6)}
        theirs = {
            tuple(p)
            for p in nx.all_simple_paths(topo.to_networkx(), (0, 0), (2, 2), cutoff=6)
        }
        assert ours == theirs

    def test_lazy_generator(self):
        topo = grid_topology(4, 4)
        gen = all_simple_paths(topo, (0, 0), (3, 3))
        first = next(gen)
        assert first[0] == (0, 0) and first[-1] == (3, 3)

    def test_no_paths_when_disconnected(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_link("c", "d")
        with pytest.raises(NoPathError):
            list(all_simple_paths(topo, "a", "x"))
        assert list(all_simple_paths(topo, "a", "c")) == []

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            list(all_simple_paths(path_topology(3), 0, 0))
