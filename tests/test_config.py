"""The REPRO_* environment-knob registry: typed accessors, declaration
checks, and call-time (never import-time) environment reads."""

from __future__ import annotations

import pytest

from repro import config
from repro.config import Knob
from repro.exceptions import ValidationError

KNOWN_KNOBS = {
    "REPRO_OBS",
    "REPRO_OBS_PATH",
    "REPRO_OBS_DIR",
    "REPRO_CONTRACTS",
    "REPRO_BACKEND",
    "REPRO_ESTIMATOR",
    "REPRO_LP_ENGINE",
    "REPRO_LP_RESOLVE_CAP",
    "REPRO_CACHE_DIR",
}


class TestRegistry:
    def test_every_knob_declared_with_doc(self):
        assert set(config.REGISTRY) == KNOWN_KNOBS
        for knob in config.REGISTRY.values():
            assert isinstance(knob, Knob)
            assert knob.doc
            assert knob.kind in ("bool", "str", "float", "choice")

    def test_knobs_listing_is_sorted(self):
        assert list(config.knobs()) == sorted(KNOWN_KNOBS)

    def test_declared_returns_the_declaration(self):
        knob = config.declared("REPRO_BACKEND")
        assert knob.name == "REPRO_BACKEND"
        assert knob.choices == ("dense", "sparse", "auto")

    def test_undeclared_knob_fails_loudly(self):
        with pytest.raises(ValidationError, match="undeclared environment knob"):
            config.declared("REPRO_TYPO")
        with pytest.raises(ValidationError):
            config.raw("REPRO_TYPO")


class TestTypedAccessors:
    def test_bool_default_and_truthy_spellings(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert config.get_bool("REPRO_OBS") is False
        for value in ("1", "true", "Yes", " ON "):
            monkeypatch.setenv("REPRO_OBS", value)
            assert config.get_bool("REPRO_OBS") is True
        monkeypatch.setenv("REPRO_OBS", "0")
        assert config.get_bool("REPRO_OBS") is False

    def test_str_default_and_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        assert config.get_str("REPRO_OBS_DIR") == "obs_runs"
        monkeypatch.setenv("REPRO_OBS_DIR", "  logs  ")
        assert config.get_str("REPRO_OBS_DIR") == "logs"

    def test_choice_knob_validates_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert config.get_str("REPRO_BACKEND") == "auto"
        monkeypatch.setenv("REPRO_BACKEND", "dense")
        assert config.get_str("REPRO_BACKEND") == "dense"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValidationError, match="must be one of"):
            config.get_str("REPRO_BACKEND")

    def test_float_default_parse_and_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_RESOLVE_CAP", raising=False)
        assert config.get_float("REPRO_LP_RESOLVE_CAP") == 1e7
        monkeypatch.setenv("REPRO_LP_RESOLVE_CAP", "2.5")
        assert config.get_float("REPRO_LP_RESOLVE_CAP") == 2.5
        monkeypatch.setenv("REPRO_LP_RESOLVE_CAP", "many")
        with pytest.raises(ValidationError, match="must be a number"):
            config.get_float("REPRO_LP_RESOLVE_CAP")

    def test_wrong_typed_accessor_rejected(self):
        with pytest.raises(ValidationError, match="not bool"):
            config.get_bool("REPRO_BACKEND")
        with pytest.raises(ValidationError, match="not float"):
            config.get_float("REPRO_OBS")
        with pytest.raises(ValidationError, match="not str"):
            config.get_str("REPRO_LP_RESOLVE_CAP")

    def test_raw_returns_unparsed_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_ENGINE", raising=False)
        assert config.raw("REPRO_LP_ENGINE") is None
        monkeypatch.setenv("REPRO_LP_ENGINE", "highs")
        assert config.raw("REPRO_LP_ENGINE") == "highs"

    def test_reads_happen_at_call_time(self, monkeypatch):
        """Monkeypatching after import must take effect — no import-time
        caching of environment values."""
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert config.get_bool("REPRO_CONTRACTS") is True
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert config.get_bool("REPRO_CONTRACTS") is False
