"""Incremental evolution parity: patched factors vs a cold build.

:meth:`LinearSystem.evolve` seeds the evolved system's backend by rank-1
update/downdate of the parent's factors.  The contract is that an evolved
system is *numerically indistinguishable* from one built cold over the
same final matrix: identical estimates, residuals, rank, and nullspace
span to 1e-8, on both backends, in both the tall (paths >= links) and
wide (paths < links) regimes.  The hypothesis suite drives random churn
chains through both constructions and compares; white-box perf-counter
tests pin down that the fast path actually ran.
"""

import numpy as np
import pytest
import scipy.sparse
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.perf.instrumentation import PerfRecorder, recording
from repro.tomography.linear_system import LinearSystem

PARITY_TOL = 1e-8

BACKENDS = ("dense", "sparse")


def _incidence(num_paths: int, num_links: int, hops: int, seed: int) -> np.ndarray:
    """Random 0/1 path-link incidence matrix with ``hops`` ones per row."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((num_paths, num_links))
    for i in range(num_paths):
        cols = rng.choice(num_links, size=min(hops, num_links), replace=False)
        matrix[i, cols] = 1.0
    return matrix


def _random_rows(count: int, num_links: int, hops: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        row = np.zeros(num_links)
        cols = rng.choice(num_links, size=min(hops, num_links), replace=False)
        row[cols] = 1.0
        rows.append(row)
    return rows


def _wrap(matrix: np.ndarray, backend: str):
    """Sparse backend gets a scipy matrix — the production representation."""
    if backend == "sparse":
        return scipy.sparse.csr_matrix(matrix)
    return matrix


def _assert_parity(evolved: LinearSystem, cold: LinearSystem, seed: int) -> None:
    """Evolved and cold systems must agree on every public observable."""
    assert evolved.rank == cold.rank
    rng = np.random.default_rng(seed)
    observed = rng.uniform(0.0, 50.0, size=evolved.num_paths)
    assert np.abs(evolved.estimate(observed) - cold.estimate(observed)).max() < PARITY_TOL
    assert np.abs(evolved.residual(observed) - cold.residual(observed)).max() < PARITY_TOL
    # Nullspace bases are not unique; their projectors N N^T are.
    n_evolved = evolved.nullspace
    n_cold = cold.nullspace
    assert n_evolved.shape == n_cold.shape
    if n_evolved.shape[1]:
        gap = np.abs(n_evolved @ n_evolved.T - n_cold @ n_cold.T).max()
        assert gap < PARITY_TOL


churn_cases = st.tuples(
    st.integers(min_value=0, max_value=2),  # removals
    st.integers(min_value=0, max_value=2),  # additions
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


class TestEvolveParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(case=churn_cases)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_tall_regime_matches_cold_build(self, backend, case):
        num_remove, num_add, seed = case
        base = _incidence(14, 9, 4, seed)
        system = LinearSystem(_wrap(base, backend), backend=backend)
        system.rank  # warm the factorization so the patch path is live
        rng = np.random.default_rng(seed + 1)
        removals = sorted(
            rng.choice(system.num_paths, size=num_remove, replace=False).tolist()
        )
        added = _random_rows(num_add, 9, 4, seed + 2)
        evolved = system.evolve(remove_indices=removals, add_rows=added)
        cold = LinearSystem(_wrap(np.asarray(evolved.matrix), backend), backend=backend)
        _assert_parity(evolved, cold, seed + 3)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(case=churn_cases)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_wide_regime_matches_cold_build(self, backend, case):
        num_remove, num_add, seed = case
        base = _incidence(8, 17, 5, seed)
        system = LinearSystem(_wrap(base, backend), backend=backend)
        system.rank
        rng = np.random.default_rng(seed + 1)
        removals = sorted(
            rng.choice(system.num_paths, size=num_remove, replace=False).tolist()
        )
        added = _random_rows(num_add, 17, 5, seed + 2)
        evolved = system.evolve(remove_indices=removals, add_rows=added)
        cold = LinearSystem(_wrap(np.asarray(evolved.matrix), backend), backend=backend)
        _assert_parity(evolved, cold, seed + 3)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_chained_epochs_match_cold_build(self, backend, seed):
        """Six epochs of 1-out/1-in churn — the streaming workload."""
        base = _incidence(12, 16, 5, seed)
        system = LinearSystem(_wrap(base, backend), backend=backend)
        system.rank
        rng = np.random.default_rng(seed + 1)
        for epoch in range(6):
            index = int(rng.integers(0, system.num_paths))
            (row,) = _random_rows(1, 16, 5, seed + 10 + epoch)
            system = system.evolve(remove_indices=[index], add_rows=[row])
        cold = LinearSystem(_wrap(np.asarray(system.matrix), backend), backend=backend)
        _assert_parity(system, cold, seed + 99)


class TestEvolveFastPath:
    """White-box: the rank-1 kernels actually ran (no silent cold rebuilds)."""

    def test_sparse_replace_is_incremental(self):
        base = _incidence(10, 20, 5, 7)
        system = LinearSystem(scipy.sparse.csr_matrix(base), backend="sparse")
        system.rank
        (row,) = _random_rows(1, 20, 5, 8)
        with recording(PerfRecorder()) as recorder:
            evolved = system.evolve(remove_indices=[3], add_rows=[row])
        assert evolved.evolved_incrementally
        assert recorder.counters["system_evolve"] == 1
        assert recorder.counters["cholesky_update"] >= 1
        # The evolved system serves estimates without ever cold-factorizing.
        with recording(PerfRecorder()) as recorder:
            evolved.estimate(np.ones(evolved.num_paths))
        assert recorder.counters.get("gram_cholesky", 0) == 0

    def test_dense_churn_is_incremental(self):
        base = _incidence(12, 8, 4, 11)
        system = LinearSystem(base, backend="dense")
        system.rank
        (row,) = _random_rows(1, 8, 4, 12)
        with recording(PerfRecorder()) as recorder:
            evolved = system.evolve(remove_indices=[2], add_rows=[row])
        assert evolved.evolved_incrementally
        assert recorder.counters["svd_downdate"] == 1
        assert recorder.counters["svd_update"] == 1

    def test_unwarmed_parent_falls_back_cold(self):
        base = _incidence(10, 6, 3, 3)
        system = LinearSystem(base, backend="dense")
        # No .rank touch: there are no factors to patch yet.
        evolved = system.evolve(remove_indices=[0])
        assert evolved.evolved_incrementally is False
        cold = LinearSystem(np.asarray(evolved.matrix), backend="dense")
        _assert_parity(evolved, cold, 4)

    def test_noop_evolve_shares_factors(self):
        base = _incidence(9, 7, 3, 5)
        system = LinearSystem(base, backend="dense")
        system.rank
        evolved = system.evolve()
        assert evolved.evolved_incrementally
        assert evolved.rank == system.rank


class TestEvolveValidation:
    def test_duplicate_removals_rejected(self):
        system = LinearSystem(_incidence(6, 5, 3, 1))
        with pytest.raises(ValidationError, match="unique"):
            system.evolve(remove_indices=[1, 1])

    def test_out_of_range_removal_rejected(self):
        system = LinearSystem(_incidence(6, 5, 3, 1))
        with pytest.raises(ValidationError, match="remove_indices"):
            system.evolve(remove_indices=[6])

    def test_bad_row_length_rejected(self):
        system = LinearSystem(_incidence(6, 5, 3, 1))
        with pytest.raises(ValidationError):
            system.evolve(add_rows=[np.ones(4)])

    def test_parent_never_mutated(self):
        base = _incidence(8, 6, 3, 2)
        system = LinearSystem(base, backend="dense")
        system.rank
        before = np.asarray(system.matrix).copy()
        system.evolve(remove_indices=[0], add_rows=[np.ones(6)])
        assert np.array_equal(np.asarray(system.matrix), before)
        assert system.num_paths == 8
