"""Dense/sparse backend parity and dispatch.

The sparse backend must be numerically interchangeable with the dense
SVD kernel: same estimates, residuals, rank, and nullspace span, to a
per-component tolerance of 1e-8, over random path-like 0/1 matrices —
including rank-deficient ones, where the min-norm solution is the
contract.  Dispatch (argument > environment > heuristic) is pinned down
separately.
"""

import numpy as np
import pytest
import scipy.sparse
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.tomography.backends import (
    AUTO_DENSITY_THRESHOLD,
    AUTO_SIZE_THRESHOLD,
    BACKEND_ENV_VAR,
    resolve_backend_name,
)
from repro.tomography.linear_system import LinearSystem

PARITY_TOL = 1e-8


def _incidence(num_paths: int, num_links: int, hops: int, seed: int) -> np.ndarray:
    """Random 0/1 path-link incidence matrix with ``hops`` ones per row."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((num_paths, num_links))
    for i in range(num_paths):
        cols = rng.choice(num_links, size=min(hops, num_links), replace=False)
        matrix[i, cols] = 1.0
    return matrix


def _pair(matrix: np.ndarray) -> tuple[LinearSystem, LinearSystem]:
    return (
        LinearSystem(matrix, backend="dense"),
        LinearSystem(matrix, backend="sparse"),
    )


class TestParity:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_paths=st.integers(2, 14),
        num_links=st.integers(2, 18),
        hops=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    def test_estimate_residual_rank_parity(self, num_paths, num_links, hops, seed):
        matrix = _incidence(num_paths, num_links, hops, seed)
        dense, sparse = _pair(matrix)
        rng = np.random.default_rng(seed + 1)
        observed = rng.uniform(0.0, 100.0, size=num_paths)

        assert dense.rank == sparse.rank
        np.testing.assert_allclose(
            dense.estimate(observed), sparse.estimate(observed), atol=PARITY_TOL
        )
        np.testing.assert_allclose(
            dense.residual(observed), sparse.residual(observed), atol=PARITY_TOL
        )
        assert sparse.residual_l1(observed) == pytest.approx(
            dense.residual_l1(observed), abs=PARITY_TOL * num_paths
        )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_paths=st.integers(2, 12),
        num_links=st.integers(2, 14),
        hops=st.integers(1, 5),
        seed=st.integers(0, 10_000),
        width=st.integers(1, 6),
    )
    def test_estimate_many_matches_per_column(self, num_paths, num_links, hops, seed, width):
        matrix = _incidence(num_paths, num_links, hops, seed)
        dense, sparse = _pair(matrix)
        rng = np.random.default_rng(seed + 2)
        block = rng.uniform(0.0, 100.0, size=(num_paths, width))

        dense_block = dense.estimate_many(block)
        sparse_block = sparse.estimate_many(block)
        np.testing.assert_allclose(dense_block, sparse_block, atol=PARITY_TOL)
        for j in range(width):
            np.testing.assert_allclose(
                sparse_block[:, j], dense.estimate(block[:, j]), atol=PARITY_TOL
            )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_paths=st.integers(2, 12),
        num_links=st.integers(2, 14),
        hops=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_nullspace_span_and_operator_parity(self, num_paths, num_links, hops, seed):
        matrix = _incidence(num_paths, num_links, hops, seed)
        dense, sparse = _pair(matrix)

        np.testing.assert_allclose(dense.estimator, sparse.estimator, atol=PARITY_TOL)
        nd, ns = dense.nullspace, sparse.nullspace
        assert nd.shape == ns.shape
        # Same span: each sparse-backend nullspace column must be killed by
        # R and reproduced by projection onto the dense basis.
        np.testing.assert_allclose(matrix @ ns, 0.0, atol=PARITY_TOL)
        if nd.shape[1]:
            np.testing.assert_allclose(nd @ (nd.T @ ns), ns, atol=PARITY_TOL)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_paths=st.integers(2, 10),
        num_links=st.integers(2, 12),
        hops=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_column_slices_match_full_operators(self, num_paths, num_links, hops, seed):
        matrix = _incidence(num_paths, num_links, hops, seed)
        dense, sparse = _pair(matrix)
        rng = np.random.default_rng(seed + 3)
        # Both operators (R⁺ and I - R R⁺) have columns indexed by path.
        path_cols = np.unique(rng.integers(0, num_paths, size=min(4, num_paths)))

        np.testing.assert_allclose(
            sparse.estimator_columns(path_cols),
            dense.estimator[:, path_cols],
            atol=PARITY_TOL,
        )
        np.testing.assert_allclose(
            sparse.residual_projector_columns(path_cols),
            dense.residual_projector[:, path_cols],
            atol=PARITY_TOL,
        )


class TestDispatch:
    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sparse")
        system = LinearSystem(np.eye(3), backend="dense")
        assert system.backend_name == "dense"

    def test_environment_overrides_heuristic(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sparse")
        assert LinearSystem(np.eye(3)).backend_name == "sparse"
        monkeypatch.setenv(BACKEND_ENV_VAR, "dense")
        assert LinearSystem(np.eye(3)).backend_name == "dense"

    def test_auto_picks_dense_for_small_matrices(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert LinearSystem(np.eye(4)).backend_name == "dense"

    def test_auto_picks_sparse_for_large_sparse_matrices(self):
        side = int(np.sqrt(AUTO_SIZE_THRESHOLD))
        assert resolve_backend_name(
            "auto", shape=(side, side), density=AUTO_DENSITY_THRESHOLD / 10
        ) == "sparse"
        # Large but dense stays on the SVD path.
        assert resolve_backend_name(
            "auto", shape=(side, side), density=0.9
        ) == "dense"

    def test_sparse_input_defaults_to_sparse_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        matrix = scipy.sparse.eye(5, format="csr")
        system = LinearSystem(matrix)
        assert system.backend_name == "sparse"
        np.testing.assert_allclose(system.estimate(np.ones(5)), np.ones(5))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            LinearSystem(np.eye(3), backend="cursed")
        with pytest.raises(ValidationError):
            resolve_backend_name("cursed", shape=(3, 3), density=1.0)


class TestSparseEndToEnd:
    def test_fig1_attack_damage_matches_dense(self, monkeypatch):
        """The full chosen-victim pipeline agrees across backends."""
        from repro.attacks.chosen_victim import ChosenVictimAttack
        from repro.scenarios.simple_network import paper_fig1_scenario

        outcomes = {}
        for name in ("dense", "sparse"):
            monkeypatch.setenv(BACKEND_ENV_VAR, name)
            scenario = paper_fig1_scenario()
            context = scenario.attack_context(["B", "C"])
            assert context.system.backend_name == name
            outcomes[name] = ChosenVictimAttack(context, [9]).run()
        assert outcomes["dense"].feasible and outcomes["sparse"].feasible
        assert outcomes["sparse"].damage == pytest.approx(
            outcomes["dense"].damage, abs=1e-6
        )
        np.testing.assert_allclose(
            outcomes["sparse"].predicted_estimate,
            outcomes["dense"].predicted_estimate,
            atol=1e-6,
        )

    def test_detector_batch_matches_single_checks_on_sparse(self, monkeypatch):
        from repro.detection.consistency import ConsistencyDetector
        from repro.scenarios.simple_network import paper_fig1_scenario

        monkeypatch.setenv(BACKEND_ENV_VAR, "sparse")
        scenario = paper_fig1_scenario()
        detector = ConsistencyDetector(scenario.path_set.routing_matrix(), alpha=50.0)
        rng = np.random.default_rng(7)
        honest = scenario.honest_measurements()
        block = honest[:, None] + rng.normal(0.0, 30.0, size=(honest.size, 5))
        batched = detector.check_batch(block)
        for j, result in enumerate(batched):
            single = detector.check(block[:, j])
            assert result.detected == single.detected
            assert result.residual_l1 == pytest.approx(single.residual_l1, abs=1e-9)
