"""Tests for linear-system utilities."""

import numpy as np
import pytest

from repro.tomography.linear_system import (
    estimator_operator,
    measurement_residual,
    residual_l1_norm,
)


class TestEstimatorOperator:
    def test_left_inverse_on_full_rank(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        op = estimator_operator(matrix)
        assert np.allclose(op @ matrix, np.eye(matrix.shape[1]))

    def test_shape(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        assert estimator_operator(matrix).shape == (matrix.shape[1], matrix.shape[0])


class TestResidual:
    def test_consistent_measurements_have_zero_residual(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = fig1_scenario.true_metrics
        y = matrix @ x
        estimate = estimator_operator(matrix) @ y
        assert residual_l1_norm(matrix, estimate, y) < 1e-8

    def test_inconsistent_measurement_detected_per_path(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = fig1_scenario.true_metrics
        y = matrix @ x
        y_tampered = y.copy()
        y_tampered[0] += 500.0
        estimate = estimator_operator(matrix) @ y_tampered
        residual = measurement_residual(matrix, estimate, y_tampered)
        assert np.abs(residual).sum() > 1.0

    def test_residual_orthogonal_to_column_space(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        rng = np.random.default_rng(2)
        y = rng.random(matrix.shape[0]) * 100
        estimate = estimator_operator(matrix) @ y
        residual = measurement_residual(matrix, estimate, y)
        assert np.allclose(matrix.T @ residual, 0.0, atol=1e-7)

    def test_length_validation(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        with pytest.raises(Exception):
            measurement_residual(matrix, np.ones(3), np.ones(matrix.shape[0]))
