"""Tests for linear-system utilities."""

import numpy as np
import pytest

from repro.tomography.linear_system import (
    LinearSystem,
    estimator_operator,
    measurement_residual,
    residual_l1_norm,
)


def _rank_deficient_matrix() -> np.ndarray:
    """A 6x5 matrix of rank 3 with a clean singular-value gap."""
    rng = np.random.default_rng(7)
    left = rng.random((6, 3))
    right = rng.random((3, 5))
    return left @ right


def _wide_rank_deficient_matrix() -> np.ndarray:
    """A 4x7 (wide) matrix of rank 2."""
    rng = np.random.default_rng(11)
    return rng.random((4, 2)) @ rng.random((2, 7))


class TestLinearSystemParity:
    """The shared-SVD kernel must match the independent-factorisation
    results (old ``np.linalg.pinv`` / projector / nullspace paths)."""

    @pytest.fixture(params=["full_rank", "rank_deficient", "wide"])
    def matrix(self, request, fig1_scenario):
        if request.param == "full_rank":
            return fig1_scenario.path_set.routing_matrix()
        if request.param == "rank_deficient":
            return _rank_deficient_matrix()
        return _wide_rank_deficient_matrix()

    def test_estimator_matches_numpy_pinv(self, matrix):
        system = LinearSystem(matrix)
        assert np.allclose(system.estimator, np.linalg.pinv(matrix), atol=1e-12)  # repro: noqa RP001 (reference)

    def test_column_space_projector_matches_pinv_product(self, matrix):
        system = LinearSystem(matrix)
        reference = matrix @ np.linalg.pinv(matrix)  # repro: noqa RP001 (reference)
        assert np.allclose(system.column_space_projector, reference, atol=1e-12)

    def test_residual_projector_matches_identity_minus_product(self, matrix):
        system = LinearSystem(matrix)
        reference = np.eye(matrix.shape[0]) - matrix @ np.linalg.pinv(matrix)  # repro: noqa RP001 (reference)
        assert np.allclose(system.residual_projector, reference, atol=1e-12)

    def test_nullspace_spans_kernel(self, matrix):
        system = LinearSystem(matrix)
        basis = system.nullspace
        assert basis.shape == (matrix.shape[1], matrix.shape[1] - system.rank)
        assert np.allclose(matrix @ basis, 0.0, atol=1e-10)
        # Orthonormal columns.
        assert np.allclose(basis.T @ basis, np.eye(basis.shape[1]), atol=1e-12)

    def test_rank_matches_numpy(self, matrix):
        assert LinearSystem(matrix).rank == np.linalg.matrix_rank(matrix)  # repro: noqa RP001 (reference)


class TestLinearSystem:
    def test_shape_and_redundancy(self, fig1_scenario):
        system = LinearSystem(fig1_scenario.path_set.routing_matrix())
        assert (system.num_paths, system.num_links) == (23, 10)
        assert system.rank == 10
        assert system.redundancy == 13
        assert system.is_full_column_rank

    def test_estimate_predict_roundtrip(self, fig1_scenario):
        system = LinearSystem(fig1_scenario.path_set.routing_matrix())
        x = fig1_scenario.true_metrics
        assert np.allclose(system.estimate(system.predict(x)), x)

    def test_residual_matches_explicit_computation(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        system = LinearSystem(matrix)
        rng = np.random.default_rng(3)
        y = rng.random(matrix.shape[0]) * 100
        explicit = measurement_residual(matrix, system.estimate(y), y)
        assert np.allclose(system.residual(y), explicit, atol=1e-10)
        assert system.residual_l1(y) == pytest.approx(
            residual_l1_norm(matrix, system.estimate(y), y)
        )

    def test_derived_operators_cached(self, fig1_scenario):
        system = LinearSystem(fig1_scenario.path_set.routing_matrix())
        assert system.estimator is system.estimator
        assert system.residual_projector is system.residual_projector

    def test_single_svd_shared_across_operators(self, fig1_scenario):
        from repro.perf.instrumentation import PerfRecorder, recording

        with recording(PerfRecorder()) as recorder:
            system = LinearSystem(fig1_scenario.path_set.routing_matrix())
            system.estimator
            system.column_space_projector
            system.residual_projector
            system.nullspace
            system.rank
        assert recorder.counters["svd"] == 1

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            LinearSystem(np.ones(4))


class TestEstimatorOperator:
    def test_left_inverse_on_full_rank(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        op = estimator_operator(matrix)
        assert np.allclose(op @ matrix, np.eye(matrix.shape[1]))

    def test_shape(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        assert estimator_operator(matrix).shape == (matrix.shape[1], matrix.shape[0])


class TestResidual:
    def test_consistent_measurements_have_zero_residual(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = fig1_scenario.true_metrics
        y = matrix @ x
        estimate = estimator_operator(matrix) @ y
        assert residual_l1_norm(matrix, estimate, y) < 1e-8

    def test_inconsistent_measurement_detected_per_path(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = fig1_scenario.true_metrics
        y = matrix @ x
        y_tampered = y.copy()
        y_tampered[0] += 500.0
        estimate = estimator_operator(matrix) @ y_tampered
        residual = measurement_residual(matrix, estimate, y_tampered)
        assert np.abs(residual).sum() > 1.0

    def test_residual_orthogonal_to_column_space(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        rng = np.random.default_rng(2)
        y = rng.random(matrix.shape[0]) * 100
        estimate = estimator_operator(matrix) @ y
        residual = measurement_residual(matrix, estimate, y)
        assert np.allclose(matrix.T @ residual, 0.0, atol=1e-7)

    def test_length_validation(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        with pytest.raises(Exception):
            measurement_residual(matrix, np.ones(3), np.ones(matrix.shape[0]))
