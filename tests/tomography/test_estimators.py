"""Tests for the tomography estimators."""

import numpy as np
import pytest

from repro.exceptions import SingularSystemError, TomographyError, ValidationError
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.tomography.estimators import (
    LeastSquaresEstimator,
    NonNegativeEstimator,
    RidgeEstimator,
)


class TestLeastSquares:
    def test_recovers_truth_on_fig1(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        estimator = LeastSquaresEstimator(matrix)
        x = fig1_scenario.true_metrics
        assert np.allclose(estimator.estimate(matrix @ x), x)

    def test_equals_normal_equations(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        estimator = LeastSquaresEstimator(matrix)
        expected = np.linalg.inv(matrix.T @ matrix) @ matrix.T
        assert np.allclose(estimator.operator, expected)

    def test_rank_deficient_rejected_by_default(self):
        mat = np.array([[1.0, 1.0]])
        with pytest.raises(SingularSystemError):
            LeastSquaresEstimator(mat)

    def test_rank_deficient_allowed_explicitly(self):
        mat = np.array([[1.0, 1.0]])
        estimator = LeastSquaresEstimator(mat, require_full_rank=False)
        # Minimum-norm solution splits the sum evenly.
        assert np.allclose(estimator.estimate(np.array([4.0])), [2.0, 2.0])

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(TomographyError):
            LeastSquaresEstimator(np.zeros((0, 3)))
        with pytest.raises(TomographyError):
            LeastSquaresEstimator(np.zeros(4))

    def test_measurement_length_checked(self, fig1_scenario):
        estimator = LeastSquaresEstimator(fig1_scenario.path_set.routing_matrix())
        with pytest.raises(ValidationError):
            estimator.estimate(np.ones(3))


class TestNonNegative:
    def test_recovers_nonnegative_truth(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = uniform_delay_metrics(fig1_scenario.topology, rng=5)
        estimator = NonNegativeEstimator(matrix)
        assert np.allclose(estimator.estimate(matrix @ x), x, atol=1e-6)

    def test_never_negative(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        rng = np.random.default_rng(0)
        y = rng.random(matrix.shape[0]) * 100
        assert np.all(estimate := NonNegativeEstimator(matrix).estimate(y) >= 0.0)

    def test_degenerate_rejected(self):
        with pytest.raises(TomographyError):
            NonNegativeEstimator(np.zeros((3, 0)))


class TestRidge:
    def test_small_lambda_close_to_ls(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = fig1_scenario.true_metrics
        estimate = RidgeEstimator(matrix, lam=1e-9).estimate(matrix @ x)
        assert np.allclose(estimate, x, atol=1e-5)

    def test_large_lambda_shrinks(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        x = fig1_scenario.true_metrics
        estimate = RidgeEstimator(matrix, lam=1e6).estimate(matrix @ x)
        assert np.linalg.norm(estimate) < np.linalg.norm(x)

    def test_handles_rank_deficiency(self):
        mat = np.array([[1.0, 1.0]])
        estimate = RidgeEstimator(mat, lam=1e-3).estimate(np.array([4.0]))
        assert np.all(np.isfinite(estimate))

    def test_invalid_lambda(self):
        with pytest.raises(TomographyError):
            RidgeEstimator(np.eye(2), lam=0.0)
