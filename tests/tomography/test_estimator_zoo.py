"""Cross-estimator parity and property suite for the estimator zoo.

The contracts, over random 0/1 path-incidence matrices:

- ``ls`` via the zoo is *bit-identical* to :meth:`LinearSystem.estimate`
  (not merely close — the same kernel operator is applied);
- ``bayes-map`` converges to least squares as the prior variance grows;
- ``l1`` exactly recovers k-sparse ground truth on identifiable
  (full-column-rank) systems;
- every family is dense/sparse-backend consistent to 1e-8;
- ``estimate_batch`` matches the looped single-vector path.

Plus: registry dispatch and the ``REPRO_ESTIMATOR`` knob, the deprecated
``RidgeEstimator``/``NonNegativeEstimator`` shims delegating to the zoo,
per-estimator threshold calibration, and the RP001 lint fixture pinning
that an estimator bypassing :class:`LinearSystem` trips the analyzer.
"""

from __future__ import annotations

import textwrap

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.exceptions import TomographyError, ValidationError
from repro.tomography.estimator_zoo import (
    BayesMapEstimator,
    ESTIMATOR_ENV_VAR,
    L1SparseEstimator,
    LeastSquaresZooEstimator,
    RidgeZooEstimator,
    calibrated_alpha,
    estimator_names,
    register_estimator,
    resolve_estimator,
)
from repro.tomography.estimators import NonNegativeEstimator, RidgeEstimator
from repro.tomography.linear_system import LinearSystem

PARITY_TOL = 1e-8

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _incidence(num_paths: int, num_links: int, hops: int, seed: int) -> np.ndarray:
    """Random 0/1 path-link incidence matrix with ``hops`` ones per row."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((num_paths, num_links))
    for i in range(num_paths):
        cols = rng.choice(num_links, size=min(hops, num_links), replace=False)
        matrix[i, cols] = 1.0
    return matrix


class TestRegistry:
    def test_the_required_families_are_registered(self):
        assert {"ls", "bayes-map", "l1", "ridge", "nnls"} <= set(estimator_names())

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ValidationError, match="unknown estimator"):
            resolve_estimator("kalman", routing_matrix=np.eye(3))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_estimator("ls")(LeastSquaresZooEstimator)

    def test_needs_exactly_one_kernel_source(self):
        system = LinearSystem(np.eye(3))
        with pytest.raises(ValidationError, match="system= or a routing_matrix="):
            resolve_estimator("ls")
        with pytest.raises(ValidationError, match="not both"):
            resolve_estimator("ls", system=system, routing_matrix=np.eye(3))

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ESTIMATOR_ENV_VAR, "bayes-map")
        est = resolve_estimator("ridge", routing_matrix=np.eye(3))
        assert isinstance(est, RidgeZooEstimator)

    def test_environment_resolves_when_name_omitted(self, monkeypatch):
        monkeypatch.setenv(ESTIMATOR_ENV_VAR, "bayes-map")
        est = resolve_estimator(routing_matrix=np.eye(3))
        assert est.name == "bayes-map"
        monkeypatch.delenv(ESTIMATOR_ENV_VAR)
        assert resolve_estimator(routing_matrix=np.eye(3)).name == "ls"

    def test_params_digest_separates_names_and_params(self):
        system = LinearSystem(np.eye(3))
        ls = resolve_estimator("ls", system=system)
        bayes_a = resolve_estimator("bayes-map", system=system, prior_var=10.0)
        bayes_b = resolve_estimator("bayes-map", system=system, prior_var=20.0)
        digests = {ls.params_digest, bayes_a.params_digest, bayes_b.params_digest}
        assert len(digests) == 3
        again = resolve_estimator("bayes-map", system=system, prior_var=10.0)
        assert again.params_digest == bayes_a.params_digest

    def test_estimator_requires_a_linear_system(self):
        with pytest.raises(ValidationError, match="LinearSystem"):
            LeastSquaresZooEstimator(np.eye(3))


class TestLsParity:
    @common
    @given(
        num_paths=st.integers(2, 12),
        num_links=st.integers(2, 14),
        hops=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_ls_via_zoo_is_bit_identical(self, num_paths, num_links, hops, seed):
        matrix = _incidence(num_paths, num_links, hops, seed)
        system = LinearSystem(matrix)
        rng = np.random.default_rng(seed + 1)
        observed = rng.uniform(0.0, 100.0, size=num_paths)
        block = rng.uniform(0.0, 100.0, size=(num_paths, 5))
        zoo = resolve_estimator("ls", system=system)
        assert np.array_equal(zoo.estimate(observed), system.estimate(observed))
        assert np.array_equal(zoo.estimate_batch(block), system.estimate_many(block))


class TestBayesMap:
    @common
    @given(
        num_paths=st.integers(3, 12),
        num_links=st.integers(2, 10),
        hops=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_weak_prior_converges_to_least_squares(
        self, num_paths, num_links, hops, seed
    ):
        matrix = _incidence(num_paths, num_links, hops, seed)
        # The shrinkage bias grows like lam / sigma_min^3: near-singular
        # systems converge too, but need priors beyond float64's reach.
        assume(np.linalg.cond(matrix) < 1e3)
        system = LinearSystem(matrix)
        rng = np.random.default_rng(seed + 1)
        observed = rng.uniform(0.0, 100.0, size=num_paths)
        bayes = resolve_estimator("bayes-map", system=system, prior_var=1e14)
        np.testing.assert_allclose(
            bayes.estimate(observed), system.estimate(observed), rtol=0, atol=1e-4
        )

    def test_strong_prior_pins_the_mean(self):
        # One path over two links cannot split the sum; a tight prior
        # around mu0 must dominate the (underdetermined) data term.
        matrix = np.array([[1.0, 1.0]])
        mean = np.array([3.0, 11.0])
        bayes = resolve_estimator(
            "bayes-map",
            routing_matrix=matrix,
            prior_var=1e-9,
            prior_mean=mean,
        )
        np.testing.assert_allclose(bayes.estimate(np.array([100.0])), mean, atol=1e-4)

    def test_consistent_mean_is_exact_whatever_the_prior(self):
        # When y == R mu0 the shifted problem is all-zeros: the MAP
        # estimate is mu0 exactly, for any prior strength.
        matrix = _incidence(6, 4, 2, seed=3)
        mean = np.full(4, 7.5)
        observed = matrix @ mean
        for prior_var in (1e-6, 1.0, 1e6):
            bayes = resolve_estimator(
                "bayes-map",
                routing_matrix=matrix,
                prior_var=prior_var,
                prior_mean=mean,
            )
            np.testing.assert_allclose(bayes.estimate(observed), mean, atol=1e-8)

    def test_ridge_is_the_zero_mean_special_case(self):
        matrix = _incidence(8, 5, 3, seed=11)
        system = LinearSystem(matrix)
        rng = np.random.default_rng(12)
        observed = rng.uniform(0.0, 50.0, size=8)
        lam = 0.37
        ridge = resolve_estimator("ridge", system=system, lam=lam)
        bayes = resolve_estimator(
            "bayes-map", system=system, prior_var=1.0 / lam, noise_var=1.0
        )
        assert isinstance(ridge, BayesMapEstimator)
        np.testing.assert_allclose(
            ridge.estimate(observed), bayes.estimate(observed), atol=1e-12
        )

    def test_invalid_parameters_rejected(self):
        system = LinearSystem(np.eye(3))
        with pytest.raises(TomographyError, match="prior_var"):
            BayesMapEstimator(system, prior_var=0.0)
        with pytest.raises(TomographyError, match="noise_var"):
            BayesMapEstimator(system, noise_var=-1.0)
        with pytest.raises(TomographyError, match="ridge parameter"):
            RidgeZooEstimator(system, lam=0.0)
        with pytest.raises(ValidationError):
            BayesMapEstimator(system, prior_mean=np.ones(7))


class TestL1Sparse:
    @small
    @given(
        num_links=st.integers(2, 8),
        extra_paths=st.integers(1, 6),
        sparsity=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_exact_recovery_of_sparse_truth(
        self, num_links, extra_paths, sparsity, seed
    ):
        matrix = _incidence(num_links + extra_paths, num_links, 2, seed)
        system = LinearSystem(matrix)
        assume(system.is_full_column_rank)
        rng = np.random.default_rng(seed + 1)
        truth = np.zeros(num_links)
        support = rng.choice(num_links, size=min(sparsity, num_links), replace=False)
        truth[support] = rng.uniform(5.0, 50.0, size=support.shape[0])
        l1 = resolve_estimator("l1", system=system)
        np.testing.assert_allclose(l1.estimate(matrix @ truth), truth, atol=1e-6)

    def test_prefers_the_sparse_explanation_when_underdetermined(self):
        # One path over two links: LS splits the delay evenly, the L1
        # decoder concentrates it (the compressive-sensing behaviour the
        # family exists for).  Either corner is minimal-L1; the solution
        # must be one of them, not the dense split.
        matrix = np.array([[1.0, 1.0]])
        l1 = resolve_estimator("l1", routing_matrix=matrix)
        solution = l1.estimate(np.array([10.0]))
        assert solution.min() == pytest.approx(0.0, abs=1e-6)
        assert solution.sum() == pytest.approx(10.0, abs=1e-6)

    def test_invalid_penalty_rejected(self):
        with pytest.raises(TomographyError, match="penalty"):
            L1SparseEstimator(LinearSystem(np.eye(2)), penalty=0.0)


class TestBackendConsistency:
    @small
    @given(
        num_paths=st.integers(3, 10),
        num_links=st.integers(2, 10),
        hops=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_every_family_is_backend_consistent(
        self, num_paths, num_links, hops, seed
    ):
        matrix = _incidence(num_paths, num_links, hops, seed)
        dense = LinearSystem(matrix, backend="dense")
        sparse = LinearSystem(matrix, backend="sparse")
        rng = np.random.default_rng(seed + 1)
        observed = matrix @ rng.uniform(1.0, 20.0, size=num_links)
        for name in estimator_names():
            via_dense = resolve_estimator(name, system=dense).estimate(observed)
            via_sparse = resolve_estimator(name, system=sparse).estimate(observed)
            np.testing.assert_allclose(
                via_dense, via_sparse, atol=PARITY_TOL, err_msg=name
            )


class TestBatchMatchesLooped:
    @small
    @given(
        num_paths=st.integers(2, 10),
        num_links=st.integers(2, 10),
        hops=st.integers(1, 4),
        seed=st.integers(0, 10_000),
        width=st.integers(1, 4),
    )
    def test_estimate_batch_matches_looped_estimate(
        self, num_paths, num_links, hops, seed, width
    ):
        matrix = _incidence(num_paths, num_links, hops, seed)
        system = LinearSystem(matrix)
        rng = np.random.default_rng(seed + 1)
        block = rng.uniform(0.0, 100.0, size=(num_paths, width))
        for name in estimator_names():
            estimator = resolve_estimator(name, system=system)
            batched = estimator.estimate_batch(block)
            looped = np.stack(
                [estimator.estimate(block[:, j]) for j in range(width)], axis=1
            )
            if name == "l1":
                # Warm-started LP re-solves may land on a different vertex
                # of a degenerate optimal face; the optimal *objective* is
                # what is unique, so compare that per column.
                for j in range(width):
                    objectives = [
                        float(np.abs(x).sum())
                        + estimator.penalty
                        * float(np.abs(matrix @ x - block[:, j]).sum())
                        for x in (batched[:, j], looped[:, j])
                    ]
                    assert objectives[0] == pytest.approx(
                        objectives[1], rel=1e-5, abs=1e-4
                    )
            else:
                np.testing.assert_allclose(
                    batched, looped, atol=PARITY_TOL, err_msg=name
                )

    def test_batch_shape_and_finiteness_validated(self):
        estimator = resolve_estimator("ls", routing_matrix=np.eye(3))
        with pytest.raises(ValidationError, match="measurement block"):
            estimator.estimate_batch(np.ones((4, 2)))
        with pytest.raises(ValidationError, match="finite"):
            estimator.estimate_batch(np.full((3, 2), np.nan))


class TestShimsDelegate:
    """The deprecated estimators must be thin delegates to the zoo —
    the drift risk ISSUE 9 names is exactly these two diverging."""

    def test_ridge_shim_delegates_to_the_zoo(self):
        matrix = _incidence(8, 5, 3, seed=21)
        rng = np.random.default_rng(22)
        observed = rng.uniform(0.0, 100.0, size=8)
        shim = RidgeEstimator(matrix, lam=0.05)
        assert isinstance(shim._delegate, RidgeZooEstimator)
        zoo = resolve_estimator("ridge", routing_matrix=matrix, lam=0.05)
        np.testing.assert_allclose(
            shim.estimate(observed), zoo.estimate(observed), atol=0
        )

    def test_nonnegative_shim_delegates_to_the_zoo(self):
        matrix = _incidence(8, 5, 3, seed=23)
        rng = np.random.default_rng(24)
        observed = rng.uniform(0.0, 100.0, size=8)
        shim = NonNegativeEstimator(matrix)
        assert shim._delegate.name == "nnls"
        zoo = resolve_estimator("nnls", routing_matrix=matrix)
        np.testing.assert_allclose(
            shim.estimate(observed), zoo.estimate(observed), atol=0
        )

    def test_shims_keep_their_validation_surface(self):
        with pytest.raises(TomographyError):
            RidgeEstimator(np.eye(2), lam=0.0)
        with pytest.raises(TomographyError):
            NonNegativeEstimator(np.zeros((3, 0)))


class TestCalibratedAlpha:
    def test_unbiased_estimator_keeps_the_base_alpha(self, fig1_scenario):
        system = LinearSystem(fig1_scenario.path_set.routing_matrix())
        honest = fig1_scenario.honest_measurements()
        ls = resolve_estimator("ls", system=system)
        assert calibrated_alpha(ls, honest, 200.0) == pytest.approx(200.0, abs=1e-6)

    def test_biased_estimator_gets_headroom(self, fig1_scenario):
        system = LinearSystem(fig1_scenario.path_set.routing_matrix())
        honest = fig1_scenario.honest_measurements()
        ridge = resolve_estimator("ridge", system=system, lam=10.0)
        alpha = calibrated_alpha(ridge, honest, 200.0)
        bias = float(np.abs(system.predict(ridge.estimate(honest)) - honest).sum())
        assert bias > 1.0  # lam=10 shrinks hard; the bias is real
        assert alpha == pytest.approx(200.0 + bias)

    def test_negative_base_rejected(self, fig1_scenario):
        system = LinearSystem(fig1_scenario.path_set.routing_matrix())
        ls = resolve_estimator("ls", system=system)
        with pytest.raises(ValidationError, match="base_alpha"):
            calibrated_alpha(ls, fig1_scenario.honest_measurements(), -1.0)


class TestRp001Fixture:
    """An estimator that factorises R itself — bypassing the shared
    LinearSystem kernel — must trip the analyzer's RP001 rule."""

    def test_bypassing_the_kernel_trips_rp001(self, tmp_path):
        from repro.analysis.lint import lint_file, resolve_selection

        rogue = textwrap.dedent(
            """
            import numpy as np

            class RogueEstimator:
                def __init__(self, routing_matrix):
                    self._operator = np.linalg.pinv(routing_matrix)

                def estimate(self, observed):
                    return self._operator @ observed
            """
        )
        path = tmp_path / "tomography" / "rogue.py"
        path.parent.mkdir(parents=True)
        path.write_text(rogue)
        findings = lint_file(
            path, resolve_selection(["RP001"]), rel_path="tomography/rogue.py"
        )
        assert findings and all(f.rule == "RP001" for f in findings)

    def test_the_real_zoo_module_is_clean(self):
        from pathlib import Path

        from repro.analysis.lint import lint_file, resolve_selection

        import repro.tomography.estimator_zoo as zoo

        path = Path(zoo.__file__)
        assert (
            lint_file(
                path,
                resolve_selection(["RP001"]),
                rel_path="tomography/estimator_zoo.py",
            )
            == []
        )
