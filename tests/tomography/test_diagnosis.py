"""Tests for the diagnosis report."""

import numpy as np

from repro.metrics.states import LinkState, StateThresholds
from repro.tomography.diagnosis import diagnose


class TestDiagnose:
    def test_partition(self):
        estimate = np.array([5.0, 500.0, 900.0, 50.0])
        report = diagnose(estimate, StateThresholds())
        assert report.normal == (0, 3)
        assert report.uncertain == (1,)
        assert report.abnormal == (2,)
        assert report.state_of(2) is LinkState.ABNORMAL

    def test_states_cover_all_links(self):
        estimate = np.linspace(0, 1000, 12)
        report = diagnose(estimate, StateThresholds())
        assert len(report.states) == 12
        assert set(report.normal) | set(report.uncertain) | set(report.abnormal) == set(
            range(12)
        )

    def test_blames(self):
        report = diagnose(np.array([900.0, 5.0, 900.0]), StateThresholds())
        assert report.blames([0])
        assert report.blames([0, 2])
        assert not report.blames([0, 1])
        assert not report.blames([])

    def test_summary(self):
        report = diagnose(np.array([5.0, 900.0]), StateThresholds())
        summary = report.summary()
        assert summary["num_links"] == 2
        assert summary["abnormal"] == 1
        assert summary["normal"] == 1
        assert summary["max_estimate"] == 900.0

    def test_estimate_copied(self):
        values = np.array([5.0, 10.0])
        report = diagnose(values, StateThresholds())
        values[0] = 999.0
        assert report.estimate[0] == 5.0
