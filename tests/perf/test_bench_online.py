"""Smoke for the online (churn-epoch) benchmark.

The full acceptance run (``repro bench online``) measures the isp_large
scale; this smoke keeps CI honest on the small scale: every epoch must
take the incremental path, match the cold rebuild to 1e-8, and beat it
on wall clock.  The hard >= 3x floor only arms when
``REPRO_BENCH_FLOOR`` is set (the dedicated CI bench step) — shared
tier-1 runners are too noisy to gate a merge on a timing ratio.
"""

import os

import pytest

from repro import config
from repro.perf.bench import online_benchmark

pytestmark = pytest.mark.skipif(
    config.get_str("REPRO_BACKEND").lower() == "dense",
    reason="online bench pins the sparse backend",
)


@pytest.fixture(scope="module")
def payload() -> dict:
    return online_benchmark(repeat=2, epochs=3, scales=("small",))


class TestOnlineBenchSmoke:
    def test_every_epoch_incremental_and_consistent(self, payload):
        section = payload["scales"]["small"]
        assert section["epochs"] == 3
        assert section["incremental_epochs"] == 3
        assert section["consistent"]
        assert section["max_abs_err"] <= 1e-8
        for record in section["per_epoch"]:
            assert record["incremental"]
            assert record["evolve_s"] > 0.0
            assert record["refactorize_s"] > 0.0

    def test_speedup_keys_feed_the_trajectory(self, payload):
        assert "online_small" in payload["speedup"]
        assert "online_small_end_to_end" in payload["speedup"]
        assert payload["speedup"]["online_small"] > 0.0

    def test_incremental_beats_full_refactorize(self, payload):
        floor = 3.0 if os.environ.get("REPRO_BENCH_FLOOR") else 1.0
        assert payload["speedup"]["online_small"] >= floor, payload["speedup"]
