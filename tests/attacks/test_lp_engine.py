"""LP engine: dispatch, warm-start parity, presolve pruning, fast path.

The contract this suite enforces end-to-end: every engine and shortcut
(warm-started persistent HiGHS model, batched ``solve_many``, Theorem-1
analytic fast path, Constraint-1 presolve pruner) must agree with the
cold scipy path on *feasibility* and (for true LP-equivalent paths) on
*optimal damage* to 1e-9 — across all three strategies and both
tomography backends.  The scipy default itself must remain byte-identical
to the historical path (the golden fixtures pin that separately).
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import lp_engine
from repro.attacks.chosen_victim import ChosenVictimAttack, build_chosen_victim_bands
from repro.attacks.lp import (
    PRESOLVE_STATUS_PREFIX,
    BandConstraints,
    IncrementalLpSolver,
    resolve_unbounded_cap,
    solve_manipulation_lp,
    theorem1_fast_path,
)
from repro.attacks.lp_engine import (
    ENGINE_ENV_VAR,
    PersistentLpSolver,
    highs_bindings,
    prune_capacities,
    resolve_engine_name,
)
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.exceptions import ValidationError
from repro.obs import core as obs
from repro.tomography.linear_system import LinearSystem

HAVE_HIGHS = highs_bindings() is not None

needs_highs = pytest.mark.skipif(
    not HAVE_HIGHS, reason="no HiGHS bindings (highspy or scipy-vendored)"
)


def _context(fig1_scenario, backend: str):
    """A fresh B,C attack context on the requested tomography backend."""
    matrix = fig1_scenario.path_set.routing_matrix()
    return fig1_scenario.attack_context(
        ["B", "C"], system=LinearSystem(matrix, backend=backend)
    )


class TestEngineResolution:
    def test_default_is_scipy(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine_name() == "scipy"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "scipy")
        if HAVE_HIGHS:
            assert resolve_engine_name("highs") == "highs"
        assert resolve_engine_name("scipy") == "scipy"

    @needs_highs
    def test_env_variable_selects_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "highs")
        assert resolve_engine_name() == "highs"
        monkeypatch.setenv(ENGINE_ENV_VAR, "auto")
        assert resolve_engine_name() == "highs"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValidationError, match="LP engine"):
            resolve_engine_name("glpk")
        monkeypatch.setenv(ENGINE_ENV_VAR, "nonsense")
        with pytest.raises(ValidationError, match=ENGINE_ENV_VAR):
            resolve_engine_name()

    def test_highs_without_bindings_is_an_error(self, monkeypatch):
        # Simulate an environment with no bindings: the memo is primed to
        # "probed and absent" so highs_bindings() reports None.
        monkeypatch.setattr(lp_engine, "_BINDINGS", False)
        with pytest.raises(ValidationError, match="highs"):
            resolve_engine_name("highs")
        # "auto" must degrade silently, never raise.
        assert resolve_engine_name("auto") == "scipy"

    @needs_highs
    def test_auto_prefers_highs_when_available(self):
        assert resolve_engine_name("auto") == "highs"


class TestPruneCapacities:
    def test_positive_and_negative_mass(self):
        sub = np.array([[1.0, -2.0, 0.5], [0.0, 0.0, 0.0]])
        pos, neg = prune_capacities(sub)
        assert np.allclose(pos, [1.5, 0.0])
        assert np.allclose(neg, [2.0, 0.0])


@needs_highs
class TestPersistentLpSolver:
    @staticmethod
    def _solver(context):
        bands = build_chosen_victim_bands(context, (), "paper")
        x = context.baseline_estimate
        return PersistentLpSolver(
            context.support_operator,
            np.asarray(bands.lower) - x,
            np.asarray(bands.upper) - x,
            var_upper=context.cap,
        )

    def test_warm_resolves_are_order_independent(self, fig1_context):
        solver = self._solver(fig1_context)
        abnormal = (
            fig1_context.thresholds.upper
            + fig1_context.margin
            - fig1_context.baseline_estimate[0]
        )
        first = solver.solve({0: (abnormal, math.inf)})
        other = solver.solve()
        again = solver.solve({0: (abnormal, math.inf)})
        assert first.optimal and other.optimal and again.optimal
        # Base bounds are restored after every solve, so repeating an
        # override yields the same optimum regardless of what ran between.
        np.testing.assert_allclose(first.values, again.values, atol=1e-9)

    def test_warm_start_reuses_basis(self, fig1_context):
        solver = self._solver(fig1_context)
        abnormal = (
            fig1_context.thresholds.upper
            + fig1_context.margin
            - fig1_context.baseline_estimate[0]
        )
        solver.solve({0: (abnormal, math.inf)})
        warm = solver.solve({0: (abnormal, math.inf)})
        # An identical re-solve from the previous basis is already optimal:
        # essentially zero simplex iterations (cold solves take several).
        assert warm.iterations <= 2

    def test_infeasible_override_reported(self, fig1_context):
        solver = self._solver(fig1_context)
        result = solver.solve({0: (1e9, math.inf)})
        assert not result.optimal
        assert result.values is None

    def test_bad_override_row_rejected(self, fig1_context):
        solver = self._solver(fig1_context)
        with pytest.raises(ValidationError, match="out of range"):
            solver.solve({99: (0.0, 1.0)})

    def test_warm_start_event_emitted(self, tmp_path, fig1_context):
        solver = self._solver(fig1_context)
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            solver.solve()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [r for r in records if r.get("name") == "lp_warm_start"]
        assert events and events[0]["optimal"]
        assert events[0]["engine"] == solver.engine_source


@needs_highs
class TestEngineParity:
    """Warm-started solves match the cold scipy path across strategies.

    Damage must agree within 1e-9 (absolute + relative) and the
    feasible/unbounded flags must be identical — on both tomography
    backends.  The vertex itself may differ when optima are non-unique,
    so parity is on the optimum value, not the argmax.
    """

    BACKENDS = ("dense", "sparse")

    @staticmethod
    def _assert_damage_parity(cold, warm):
        assert warm.feasible == cold.feasible
        if cold.feasible:
            assert warm.damage == pytest.approx(cold.damage, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chosen_victim_parity(self, fig1_scenario, backend):
        context = _context(fig1_scenario, backend)
        cold = ChosenVictimAttack(context, [0], engine="scipy").run()
        warm = ChosenVictimAttack(context, [0], engine="highs").run()
        self._assert_damage_parity(cold, warm)
        assert warm.extras["unbounded"] == cold.extras["unbounded"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_damage_parity(self, fig1_scenario, backend):
        context = _context(fig1_scenario, backend)
        cold = MaxDamageAttack(context, engine="scipy").run()
        warm = MaxDamageAttack(context, engine="highs").run()
        self._assert_damage_parity(cold, warm)
        assert warm.victim_links == cold.victim_links
        assert warm.extras["unbounded"] == cold.extras["unbounded"]
        assert warm.extras["engine"] == "highs"
        # The per-candidate damage map must agree point by point.
        cold_map = MaxDamageAttack(context, engine="scipy").damage_by_victim()
        warm_map = MaxDamageAttack(context, engine="highs").damage_by_victim()
        assert set(cold_map) == set(warm_map)
        for j, damage in cold_map.items():
            if math.isnan(damage):
                assert math.isnan(warm_map[j])
            else:
                assert warm_map[j] == pytest.approx(damage, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_obfuscation_parity(self, fig1_scenario, backend):
        context = _context(fig1_scenario, backend)
        cold = ObfuscationAttack(context, min_victims=1, engine="scipy").run()
        warm = ObfuscationAttack(context, min_victims=1, engine="highs").run()
        self._assert_damage_parity(cold, warm)
        assert warm.victim_links == cold.victim_links
        assert warm.extras["unbounded"] == cold.extras["unbounded"]

    def test_stealthy_parity(self, fig1_scenario):
        context = _context(fig1_scenario, "dense")
        cold = MaxDamageAttack(context, engine="scipy", stealthy=True).run()
        warm = MaxDamageAttack(context, engine="highs", stealthy=True).run()
        self._assert_damage_parity(cold, warm)
        if warm.feasible:
            residual = context.residual_projector() @ warm.manipulation
            assert np.abs(residual).max() < 1e-6

    def test_unbounded_flag_parity(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        cold = IncrementalLpSolver(
            operator, x, [0, 1], 23, bands, cap=None, engine="scipy"
        ).solve()
        warm = IncrementalLpSolver(
            operator, x, [0, 1], 23, bands, cap=None, engine="highs"
        ).solve()
        assert cold.unbounded and warm.unbounded
        assert math.isfinite(warm.damage)
        assert warm.damage == pytest.approx(
            float(np.abs(warm.manipulation).sum())
        )

    def test_incremental_override_parity(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        for j in range(5):
            bands.require_at_most(j, 99.0)
        cold = IncrementalLpSolver(
            operator, x, list(range(0, 23, 2)), 23, bands, cap=2000.0, engine="scipy"
        )
        warm = IncrementalLpSolver(
            operator, x, list(range(0, 23, 2)), 23, bands, cap=2000.0, engine="highs"
        )
        for overrides in ({}, {8: (801.0, math.inf)}, {2: (801.0, math.inf)}):
            a = cold.solve(overrides)
            b = warm.solve(overrides)
            assert b.feasible == a.feasible
            if a.feasible:
                assert b.damage == pytest.approx(a.damage, rel=1e-9, abs=1e-9)


@pytest.fixture()
def fig1_system_operator(fig1_scenario):
    from repro.tomography.linear_system import estimator_operator

    matrix = fig1_scenario.path_set.routing_matrix()
    return estimator_operator(matrix), fig1_scenario.true_metrics


class TestSolveMany:
    def test_matches_individual_solves(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        solver = IncrementalLpSolver(operator, x, [0, 1, 2], 23, bands, cap=500.0)
        overrides = [{j: (801.0, math.inf)} for j in (5, 8, 9)]
        batched = list(solver.solve_many(iter(overrides)))
        for override, solution in zip(overrides, batched):
            reference = solver.solve(override)
            assert solution.feasible == reference.feasible
            if reference.feasible:
                assert solution.damage == reference.damage

    def test_generator_is_lazy(self, fig1_system_operator):
        from repro.perf.instrumentation import PerfRecorder, recording

        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        solver = IncrementalLpSolver(operator, x, [0, 1, 2], 23, bands, cap=500.0)
        overrides = [{j: (801.0, math.inf)} for j in (5, 8, 9)]
        with recording(PerfRecorder()) as recorder:
            stream = solver.solve_many(iter(overrides))
            next(stream)
        # Only the consumed candidate was processed (solved or pruned).
        processed = (
            recorder.counters["lp_solve"] + recorder.counters["lp_presolve_prune"]
        )
        assert processed == 1


class TestPresolvePruner:
    def test_hopeless_candidate_pruned_without_solving(self, fig1_system_operator):
        from repro.perf.instrumentation import PerfRecorder, recording

        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        solver = IncrementalLpSolver(operator, x, [0], 23, bands, cap=10.0)
        # A raise of 1e9 is far beyond cap * positive-mass on any link.
        with recording(PerfRecorder()) as recorder:
            solution = solver.solve({9: (float(x[9] + 1e9), math.inf)})
        assert not solution.feasible
        assert solution.status.startswith(PRESOLVE_STATUS_PREFIX)
        assert solver.presolve_pruned == 1
        assert recorder.counters.get("lp_solve", 0) == 0
        assert recorder.counters["lp_presolve_prune"] == 1

    def test_prune_event_emitted(self, tmp_path, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        solver = IncrementalLpSolver(operator, x, [0], 23, bands, cap=10.0)
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            solver.solve({9: (float(x[9] + 1e9), math.inf)})
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [
            r
            for r in records
            if r.get("name") == "lp_presolve_prune" and "links" in r
        ]
        assert events and events[0]["links"] == [9]
        assert events[0]["reason"].startswith(PRESOLVE_STATUS_PREFIX)
        assert events[0]["pruned_total"] == 1

    def test_presolve_off_still_solves(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        solver = IncrementalLpSolver(
            operator, x, [0], 23, bands, cap=10.0, presolve=False
        )
        solution = solver.solve({9: (float(x[9] + 1e9), math.inf)})
        assert not solution.feasible
        assert not solution.status.startswith(PRESOLVE_STATUS_PREFIX)
        assert solver.presolve_pruned == 0

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_never_prunes_a_feasible_candidate(self, data):
        """Soundness: a pruned override is LP-infeasible, always.

        Random operators (mixed-sign entries, so both capacity directions
        are exercised), random baselines, caps and override demands.  The
        pruner may *miss* infeasible candidates (it is deliberately
        incomplete) but must never reject one the LP can satisfy.
        """
        num_links = data.draw(st.integers(2, 5), label="num_links")
        num_paths = data.draw(st.integers(2, 6), label="num_paths")
        entries = data.draw(
            st.lists(
                st.floats(-1.0, 1.0, allow_nan=False, width=32),
                min_size=num_links * num_paths,
                max_size=num_links * num_paths,
            ),
            label="operator",
        )
        operator = np.asarray(entries, dtype=float).reshape(num_links, num_paths)
        x = np.asarray(
            data.draw(
                st.lists(
                    st.floats(0.0, 100.0, allow_nan=False, width=32),
                    min_size=num_links,
                    max_size=num_links,
                ),
                label="baseline",
            )
        )
        support = sorted(
            data.draw(
                st.sets(st.integers(0, num_paths - 1), min_size=1),
                label="support",
            )
        )
        cap = data.draw(st.floats(1.0, 200.0, allow_nan=False), label="cap")
        j = data.draw(st.integers(0, num_links - 1), label="victim")
        demand = data.draw(st.floats(0.0, 500.0, allow_nan=False), label="demand")
        raise_direction = data.draw(st.booleans(), label="raise")
        if raise_direction:
            override = {j: (float(x[j] + demand), math.inf)}
        else:
            override = {j: (-math.inf, float(x[j] - demand))}

        bands = BandConstraints.unbounded(num_links)
        pruning = IncrementalLpSolver(
            operator, x, support, num_paths, bands, cap=cap, presolve=True
        )
        reason = pruning.presolve_prune_reason(override)
        if reason is not None:
            reference = IncrementalLpSolver(
                operator, x, support, num_paths, bands, cap=cap, presolve=False
            ).solve(override)
            assert not reference.feasible


class TestResolveCapConfig:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_RESOLVE_CAP", raising=False)
        assert resolve_unbounded_cap() == 1e7

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_RESOLVE_CAP", "500")
        assert resolve_unbounded_cap(123.0) == 123.0
        assert resolve_unbounded_cap() == 500.0

    @pytest.mark.parametrize("bad", ["0", "-3", "inf", "nan", "banana"])
    def test_bad_env_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_LP_RESOLVE_CAP", bad)
        with pytest.raises(ValidationError):
            resolve_unbounded_cap()

    def test_bad_explicit_value_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            resolve_unbounded_cap(-1.0)

    def test_threaded_through_unbounded_resolve(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        solution = solve_manipulation_lp(
            operator, x, [0, 1], 23, bands, cap=None, resolve_cap=250.0
        )
        assert solution.unbounded
        # The concrete vector is capped at the configured resolve cap.
        assert float(solution.manipulation.max()) == pytest.approx(250.0, rel=1e-6)

    def test_env_threaded_through(self, monkeypatch, fig1_system_operator):
        operator, x = fig1_system_operator
        monkeypatch.setenv("REPRO_LP_RESOLVE_CAP", "125.0")
        bands = BandConstraints.unbounded(10)
        solution = solve_manipulation_lp(operator, x, [0, 1], 23, bands, cap=None)
        assert solution.unbounded
        assert float(solution.manipulation.max()) == pytest.approx(125.0, rel=1e-6)

    def test_solver_rejects_bad_resolve_cap(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        with pytest.raises(ValidationError):
            IncrementalLpSolver(
                operator, x, [0], 23, bands, cap=None, resolve_cap=0.0
            )


class TestTheorem1FastPath:
    """The analytic witness: applicable exactly under Theorem 1's hypotheses."""

    def test_perfect_cut_witness(self, fig1_context):
        context = fig1_context
        bands = build_chosen_victim_bands(context, (0,), "paper")
        witness = theorem1_fast_path(
            context.routing_matrix,
            context.baseline_estimate,
            context.support,
            bands,
            (0,),
            cap=context.cap,
            rank=context.system.rank,
        )
        assert witness is not None and witness.feasible
        assert "theorem1" in witness.status
        # Constraint 1: non-negative, supported on attacker paths only.
        m = witness.manipulation
        assert np.all(m >= 0.0)
        off = [i for i in range(context.num_paths) if i not in set(context.support)]
        assert np.all(m[off] == 0.0)
        # The forged estimate satisfies every band.
        estimate = context.predicted_estimate(m)
        assert np.all(estimate >= bands.lower - 1e-6)
        assert np.all(estimate <= bands.upper + 1e-6)
        # Zero residual: the witness is automatically stealthy (Theorem 3).
        residual = context.residual_projector() @ m
        assert np.abs(residual).max() < 1e-6
        assert witness.damage == pytest.approx(float(m.sum()))

    def test_witness_agrees_with_lp_feasibility(self, fig1_context):
        """The contracts hook inside analytic_witness cross-checks the LP."""
        from repro.attacks.chosen_victim import analytic_witness

        context = fig1_context
        bands = build_chosen_victim_bands(context, (0,), "paper")
        witness = analytic_witness(context, bands, (0,))
        # Contracts are active under pytest, so reaching here means the LP
        # agreed; assert the witness is also band-feasible on its own.
        assert witness is not None and witness.feasible

    def test_rank_deficient_declines(self, fig1_context):
        context = fig1_context
        bands = build_chosen_victim_bands(context, (0,), "paper")
        assert (
            theorem1_fast_path(
                context.routing_matrix,
                context.baseline_estimate,
                context.support,
                bands,
                (0,),
                cap=context.cap,
                rank=context.system.rank - 1,
            )
            is None
        )

    def test_imperfect_cut_declines(self, fig1_context):
        context = fig1_context
        # Link 9 is not perfectly cut by B,C: some path through it has no
        # attacker, so the constructive m = R delta violates Constraint 1.
        bands = build_chosen_victim_bands(context, (9,), "paper")
        assert (
            theorem1_fast_path(
                context.routing_matrix,
                context.baseline_estimate,
                context.support,
                bands,
                (9,),
                cap=context.cap,
                rank=context.system.rank,
            )
            is None
        )

    def test_cap_violation_declines(self, fig1_context):
        context = fig1_context
        bands = build_chosen_victim_bands(context, (0,), "paper")
        assert (
            theorem1_fast_path(
                context.routing_matrix,
                context.baseline_estimate,
                context.support,
                bands,
                (0,),
                cap=1.0,  # the needed raise is hundreds of ms per path
                rank=context.system.rank,
            )
            is None
        )

    def test_lowering_demand_declines(self, fig1_context):
        context = fig1_context
        bands = BandConstraints.unbounded(context.num_links)
        baseline = context.baseline_estimate
        # Demand link 0's estimate be *below* its baseline: needs a
        # negative delta, which attacks (pure delay addition) cannot do.
        bands.require_at_most(0, float(baseline[0]) - 50.0)
        assert (
            theorem1_fast_path(
                context.routing_matrix,
                baseline,
                context.support,
                bands,
                (0,),
                cap=context.cap,
                rank=context.system.rank,
            )
            is None
        )

    def test_chosen_victim_analytic_outcome(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0], analytic=True).run()
        assert outcome.feasible
        assert outcome.extras["analytic"] is True
        assert "theorem1" in outcome.status
        assert 0 in outcome.diagnosis.abnormal

    def test_chosen_victim_analytic_falls_back(self, fig1_context):
        # Victim 9 is not perfectly cut; the LP path must take over.
        outcome = ChosenVictimAttack(fig1_context, [9], analytic=True).run()
        assert outcome.extras["analytic"] is False
        assert "theorem1" not in outcome.status

    def test_max_damage_existence_uses_fast_path(self, fig1_context):
        attack = MaxDamageAttack(
            fig1_context, stop_at_first_feasible=True, analytic=True
        )
        outcome = attack.run()
        assert outcome.feasible
        assert outcome.extras.get("analytic") is True
        # Existence only: no LP was solved for the returned candidate.
        assert outcome.extras["candidates_tried"] == 0

    def test_max_damage_full_search_ignores_analytic(self, fig1_context):
        """Without stop_at_first_feasible the witness (non-optimal) must
        not displace the damage-maximising LP scan."""
        reference = MaxDamageAttack(fig1_context).run()
        outcome = MaxDamageAttack(fig1_context, analytic=True).run()
        assert outcome.extras.get("analytic") is not True
        assert outcome.damage == pytest.approx(reference.damage)


class TestSparsityCaching:
    def test_rows_for_overrides_reports_nnz(self, fig1_system_operator):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        for j in range(5):
            bands.require_at_most(j, 99.0)
        solver = IncrementalLpSolver(operator, x, [0, 1, 2], 23, bands, cap=500.0)
        a_ub, _, nnz = solver._rows_for_overrides({})
        assert a_ub is solver._base_a  # unchanged base: no copy, no recount
        assert nnz == int(np.count_nonzero(solver._base_a))
        a_ub2, _, nnz2 = solver._rows_for_overrides({7: (801.0, math.inf)})
        assert nnz2 == int(np.count_nonzero(a_ub2))

    def test_maybe_sparse_uses_nnz_hint(self):
        from repro.attacks.lp import _SPARSE_BLOCK_SIZE, _maybe_sparse
        import scipy.sparse

        side = int(math.isqrt(_SPARSE_BLOCK_SIZE)) + 1
        block = np.ones((side, side))  # fully dense: would stay dense
        # A (deliberately wrong) nnz hint of 0 must be believed — proof the
        # hint short-circuits the recount.
        assert scipy.sparse.issparse(_maybe_sparse(block, 0))
        assert _maybe_sparse(block, block.size) is block

    def test_maybe_sparse_passes_sparse_through(self):
        import scipy.sparse

        from repro.attacks.lp import _maybe_sparse

        block = scipy.sparse.eye(300, format="csr")
        assert _maybe_sparse(block) is block


class TestRebase:
    """Bound-only churn epochs reuse the warm model via changeRowBounds."""

    def _solver(self, fig1_system_operator, **kwargs):
        operator, x = fig1_system_operator
        bands = BandConstraints.unbounded(10)
        bands.require_at_most(9, float(x[9] + 50.0))
        return IncrementalLpSolver(
            operator, x, [0, 1, 2], 23, bands, cap=500.0, **kwargs
        )

    def test_rebase_matches_cold_solver(self, fig1_system_operator):
        operator, x = fig1_system_operator
        solver = self._solver(fig1_system_operator)
        new_x = x + 3.0
        new_bands = BandConstraints.unbounded(10)
        new_bands.require_at_most(9, float(new_x[9] + 50.0))
        solver.rebase(new_x, new_bands)
        cold = IncrementalLpSolver(
            operator, new_x, [0, 1, 2], 23, new_bands, cap=500.0
        )
        for overrides in ({}, {8: (float(new_x[8] + 801.0), math.inf)}):
            a = solver.solve(overrides)
            b = cold.solve(overrides)
            assert a.feasible == b.feasible
            if a.feasible:
                assert a.damage == pytest.approx(b.damage, rel=1e-9, abs=1e-9)

    def test_warm_model_survives_rebase(self, fig1_system_operator):
        from repro.perf.instrumentation import PerfRecorder, recording

        operator, x = fig1_system_operator
        solver = self._solver(fig1_system_operator, engine="highs")
        solver.solve({})  # builds the persistent model
        persistent = solver._persistent
        assert persistent is not None
        solves_before = persistent.solves
        new_x = x + 5.0
        new_bands = BandConstraints.unbounded(10)
        new_bands.require_at_most(9, float(new_x[9] + 50.0))
        with recording(PerfRecorder()) as recorder:
            solver.rebase(new_x, new_bands)
            solver.solve({})
        # The same HiGHS model object kept solving: one rebase event, no
        # model rebuild, and the solve counter continued from where it was.
        assert recorder.counters["lp_rebase"] == 1
        assert recorder.counters.get("lp_model_build", 0) == 0
        assert solver._persistent is persistent
        assert persistent.solves == solves_before + 1

    def test_rebase_before_warm_build_is_clean(self, fig1_system_operator):
        from repro.perf.instrumentation import PerfRecorder, recording

        operator, x = fig1_system_operator
        solver = self._solver(fig1_system_operator, engine="highs")
        new_x = x + 1.0
        solver.rebase(new_x, BandConstraints.unbounded(10))
        with recording(PerfRecorder()) as recorder:
            solver.solve({})
        # First solve after an early rebase builds the model exactly once,
        # already on the rebased bounds.
        assert recorder.counters["lp_model_build"] == 1

    def test_rebase_validation(self, fig1_system_operator):
        solver = self._solver(fig1_system_operator)
        with pytest.raises(ValidationError, match="length"):
            solver.rebase(np.ones(4), BandConstraints.unbounded(10))
        with pytest.raises(ValidationError, match="per link"):
            solver.rebase(np.ones(10), BandConstraints.unbounded(4))
