"""Tests for the frame-and-blur hybrid strategy."""

import pytest

from repro.attacks.hybrid import FrameAndBlurAttack
from repro.exceptions import AttackConstraintError
from repro.metrics.states import LinkState


class TestFrameAndBlur:
    def test_feasible_on_fig1(self, fig1_context):
        outcome = FrameAndBlurAttack(fig1_context, [9]).run()
        assert outcome.feasible
        assert outcome.strategy == "frame-and-blur"

    def test_victim_abnormal_attackers_uncertain(self, fig1_context):
        outcome = FrameAndBlurAttack(fig1_context, [9]).run()
        assert outcome.diagnosis.state_of(9) is LinkState.ABNORMAL
        for j in fig1_context.controlled_links:
            assert outcome.diagnosis.state_of(j) is LinkState.UNCERTAIN

    def test_extra_blur_links(self, fig1_context):
        outcome = FrameAndBlurAttack(fig1_context, [9], blur_links=[0, 8]).run()
        if outcome.feasible:
            assert outcome.diagnosis.state_of(0) is LinkState.UNCERTAIN
            assert outcome.diagnosis.state_of(8) is LinkState.UNCERTAIN

    def test_blur_set_always_includes_controlled(self, fig1_context):
        attack = FrameAndBlurAttack(fig1_context, [9])
        assert set(fig1_context.controlled_links) <= set(attack.blur_links)

    def test_damage_positive(self, fig1_context):
        outcome = FrameAndBlurAttack(fig1_context, [9]).run()
        assert outcome.damage > 0
        assert outcome.extras["blur_links"] == sorted(fig1_context.controlled_links)

    def test_constraint1_respected(self, fig1_context):
        outcome = FrameAndBlurAttack(fig1_context, [9]).run()
        support = set(fig1_context.support)
        for row in range(fig1_context.num_paths):
            if row not in support:
                assert abs(outcome.manipulation[row]) < 1e-9

    def test_validation(self, fig1_context):
        with pytest.raises(AttackConstraintError):
            FrameAndBlurAttack(fig1_context, [])
        with pytest.raises(AttackConstraintError):
            FrameAndBlurAttack(fig1_context, [1])  # attacker-controlled
        with pytest.raises(AttackConstraintError):
            FrameAndBlurAttack(fig1_context, [9], blur_links=[9])
        with pytest.raises(AttackConstraintError):
            FrameAndBlurAttack(fig1_context, [99])

    def test_stealthy_perfect_cut_variant(self, fig1_scenario, fig1_context):
        """Framing the perfectly-cut link 0 with blur, consistently."""
        import numpy as np

        outcome = FrameAndBlurAttack(fig1_context, [0], stealthy=True).run()
        if outcome.feasible:
            matrix = fig1_scenario.path_set.routing_matrix()
            projector = np.eye(matrix.shape[0]) - matrix @ fig1_context.operator
            assert np.abs(projector @ outcome.manipulation).max() < 1e-6
