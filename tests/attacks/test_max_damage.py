"""Tests for maximum-damage scapegoating."""

import math

import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.max_damage import MaxDamageAttack
from repro.exceptions import ValidationError


class TestSearch:
    def test_succeeds_on_fig1(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context).run()
        assert outcome.feasible
        assert outcome.damage > 0
        assert len(outcome.victim_links) == 1

    def test_dominates_every_chosen_victim(self, fig1_context):
        """eq. (8) >= eq. (4) for every fixed victim — the defining property."""
        best = MaxDamageAttack(fig1_context).run()
        for victim in range(fig1_context.num_links):
            if victim in fig1_context.controlled_links:
                continue
            single = ChosenVictimAttack(fig1_context, [victim], mode="paper").run()
            if single.feasible:
                assert best.damage >= single.damage - 1e-6

    def test_victim_never_controlled(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context).run()
        assert not set(outcome.victim_links) & set(fig1_context.controlled_links)

    def test_victims_flagged_abnormal(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context).run()
        assert outcome.diagnosis.blames(outcome.victim_links)

    def test_search_trace_recorded(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context).run()
        trace = outcome.extras["search_trace"]
        assert len(trace) == outcome.extras["candidates_tried"]
        best_damage = max(t["damage"] for t in trace if t["feasible"])
        assert outcome.damage == pytest.approx(best_damage)

    def test_candidate_restriction(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context, candidate_links=[9]).run()
        assert outcome.victim_links == (9,)

    def test_stop_at_first_feasible(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context, stop_at_first_feasible=True).run()
        assert outcome.feasible
        assert outcome.extras["candidates_tried"] >= 1

    def test_victim_set_size_two(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context, victim_set_size=2).run()
        if outcome.feasible:
            assert len(outcome.victim_links) == 2

    def test_pair_damage_bounded_by_singletons(self, fig1_context):
        """Damage is antitone in victim-set inclusion."""
        pair = MaxDamageAttack(fig1_context, victim_set_size=2).run()
        singles = MaxDamageAttack(fig1_context).damage_by_victim()
        if pair.feasible:
            bound = min(singles[v] for v in pair.victim_links)
            assert pair.damage <= bound + 1e-6

    def test_max_combinations_limits_search(self, fig1_context):
        outcome = MaxDamageAttack(fig1_context, max_combinations=1).run()
        assert outcome.extras["candidates_tried"] <= 1

    def test_infeasible_when_no_candidates(self, fig1_scenario):
        """An attacker absent from every path cannot scapegoat anyone."""
        # M1's paths all cross it, so pick a context where support exists but
        # candidates are forced empty instead.
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = MaxDamageAttack(context, candidate_links=[]).run()
        assert not outcome.feasible

    def test_validation(self, fig1_context):
        with pytest.raises(ValidationError):
            MaxDamageAttack(fig1_context, victim_set_size=0)
        with pytest.raises(ValidationError):
            MaxDamageAttack(fig1_context, max_combinations=0)
        with pytest.raises(ValidationError):
            MaxDamageAttack(fig1_context, candidate_links=[99])


class TestDamageByVictim:
    def test_map_covers_all_candidates(self, fig1_context):
        attack = MaxDamageAttack(fig1_context)
        damage_map = attack.damage_by_victim()
        assert set(damage_map) == set(attack.candidates)

    def test_map_consistent_with_run(self, fig1_context):
        attack = MaxDamageAttack(fig1_context)
        damage_map = attack.damage_by_victim()
        outcome = attack.run()
        finite = {k: v for k, v in damage_map.items() if not math.isnan(v)}
        assert outcome.damage == pytest.approx(max(finite.values()))
