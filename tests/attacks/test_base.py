"""Tests for AttackContext and AttackOutcome."""

import numpy as np
import pytest

from repro.attacks.base import AttackContext, AttackOutcome
from repro.exceptions import AttackConstraintError, ValidationError
from repro.metrics.states import StateThresholds


class TestAttackContext:
    def test_derived_sets(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B", "C"]
        )
        assert context.controlled_links == frozenset({1, 2, 3, 4, 5, 6, 7})
        assert context.num_paths == 23
        assert context.num_links == 10
        assert set(context.support) == set(
            fig1_scenario.path_set.paths_containing_any_node({"B", "C"})
        )

    def test_duplicate_attackers_deduplicated(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B", "B", "C"]
        )
        assert context.attacker_nodes == ("B", "C")

    def test_empty_attackers_rejected(self, fig1_scenario):
        with pytest.raises(AttackConstraintError):
            AttackContext(fig1_scenario.path_set, fig1_scenario.true_metrics, [])

    def test_negative_margin_rejected(self, fig1_scenario):
        with pytest.raises(ValidationError):
            AttackContext(
                fig1_scenario.path_set,
                fig1_scenario.true_metrics,
                ["B"],
                margin=-1.0,
            )

    def test_baseline_equals_truth_under_full_rank(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B"]
        )
        assert np.allclose(context.baseline_estimate, fig1_scenario.true_metrics)

    def test_observed_and_predicted(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B", "C"]
        )
        m = np.zeros(23)
        m[list(context.support)[:2]] = 100.0
        observed = context.observed_measurements(m)
        assert np.allclose(observed, context.honest_measurements() + m)
        predicted = context.predicted_estimate(m)
        assert predicted.shape == (10,)
        # Estimate must move, and only via Q m.
        assert not np.allclose(predicted, fig1_scenario.true_metrics)

    def test_residual_projector_properties(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B"]
        )
        projector = context.residual_projector()
        assert np.allclose(projector @ projector, projector, atol=1e-8)
        assert np.allclose(projector @ fig1_scenario.path_set.routing_matrix(), 0.0, atol=1e-8)
        # Cached: same object on second call.
        assert context.residual_projector() is projector

    def test_manipulable_link_mask(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B", "C"]
        )
        mask = context.manipulable_link_mask()
        # Everything B and C touch (and more) is manipulable on Fig. 1.
        assert mask.sum() >= 8

    def test_default_thresholds(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B"]
        )
        assert context.thresholds == StateThresholds()


class TestAttackOutcome:
    def test_infeasible_constructor(self):
        outcome = AttackOutcome.infeasible("test", "why not", (3,))
        assert not outcome.feasible
        assert outcome.victim_links == (3,)
        assert outcome.status == "why not"
        assert np.isnan(outcome.mean_path_measurement)

    def test_from_manipulation_derives_everything(self, fig1_scenario):
        context = AttackContext(
            fig1_scenario.path_set, fig1_scenario.true_metrics, ["B", "C"]
        )
        m = np.zeros(23)
        m[list(context.support)] = 10.0
        outcome = AttackOutcome.from_manipulation("test", context, m, (9,), "ok")
        assert outcome.feasible
        assert outcome.damage == pytest.approx(float(m.sum()))
        assert outcome.diagnosis is not None
        assert outcome.victim_links == (9,)
        assert np.allclose(
            outcome.observed_measurements, context.observed_measurements(m)
        )
