"""Tests for the shared manipulation LP."""

import math

import numpy as np
import pytest

from repro.attacks.lp import (
    BandConstraints,
    IncrementalLpSolver,
    solve_manipulation_lp,
    theorem1_manipulation,
)
from repro.exceptions import AttackError, ValidationError
from repro.tomography.linear_system import estimator_operator


@pytest.fixture()
def fig1_system(fig1_scenario):
    matrix = fig1_scenario.path_set.routing_matrix()
    return matrix, estimator_operator(matrix), fig1_scenario.true_metrics


class TestBandConstraints:
    def test_unbounded_admits_everything(self):
        bands = BandConstraints.unbounded(3)
        bands.validate()
        assert np.all(np.isinf(bands.lower)) and np.all(np.isinf(bands.upper))

    def test_tightening_keeps_most_restrictive(self):
        bands = BandConstraints.unbounded(2)
        bands.require_at_most(0, 100.0)
        bands.require_at_most(0, 50.0)
        bands.require_at_most(0, 80.0)
        assert bands.upper[0] == 50.0
        bands.require_at_least(1, 10.0)
        bands.require_at_least(1, 30.0)
        assert bands.lower[1] == 30.0

    def test_empty_band_detected(self):
        bands = BandConstraints.unbounded(1)
        bands.require_at_most(0, 10.0)
        bands.require_at_least(0, 20.0)
        with pytest.raises(ValidationError, match="empty band"):
            bands.validate()


class TestSolveLp:
    def test_unconstrained_maximises_to_cap(self, fig1_system):
        _, operator, x = fig1_system
        support = [0, 1, 2]
        bands = BandConstraints.unbounded(10)
        solution = solve_manipulation_lp(operator, x, support, 23, bands, cap=100.0)
        assert solution.feasible
        assert solution.damage == pytest.approx(300.0)
        assert np.allclose(solution.manipulation[support], 100.0)

    def test_constraint1_support_respected(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        solution = solve_manipulation_lp(operator, x, [3, 7], 23, bands, cap=50.0)
        off = [i for i in range(23) if i not in (3, 7)]
        assert np.all(solution.manipulation[off] == 0.0)

    def test_infeasible_band_reported(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        # Demand an estimate increase on link 9 without support anywhere.
        bands.require_at_least(9, x[9] + 100.0)
        solution = solve_manipulation_lp(operator, x, [], 23, bands)
        assert not solution.feasible
        assert solution.manipulation is None
        assert solution.damage == 0.0

    def test_empty_support_with_satisfied_bands(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        solution = solve_manipulation_lp(operator, x, [], 23, bands)
        assert solution.feasible
        assert solution.damage == 0.0

    def test_unbounded_without_cap_flagged(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        solution = solve_manipulation_lp(operator, x, [0, 1], 23, bands, cap=None)
        assert solution.feasible
        assert solution.unbounded  # the flag is the only infinity signal
        assert solution.manipulation is not None  # concrete vector still given
        # The damage contract: always the L1 norm of the returned vector,
        # never a bare inf detached from it.
        assert math.isfinite(solution.damage)
        assert solution.damage == pytest.approx(
            float(np.abs(solution.manipulation).sum())
        )

    def test_damage_always_l1_of_manipulation(self, fig1_system):
        """Regression: ``damage == ||manipulation||_1`` in every feasible
        outcome, bounded or not (the bug returned damage=inf alongside a
        finite capped vector)."""
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        for cap in (None, 50.0, 2000.0):
            solution = solve_manipulation_lp(operator, x, [0, 1], 23, bands, cap=cap)
            assert solution.feasible
            assert solution.damage == pytest.approx(
                float(np.abs(solution.manipulation).sum())
            )

    def test_band_constraint_respected(self, fig1_system):
        matrix, operator, x = fig1_system
        support = list(range(23))
        bands = BandConstraints.unbounded(10)
        bands.require_at_most(0, x[0] + 10.0)
        solution = solve_manipulation_lp(operator, x, support, 23, bands, cap=2000.0)
        assert solution.feasible
        estimate = x + operator @ solution.manipulation
        assert estimate[0] <= x[0] + 10.0 + 1e-6

    def test_consistency_matrix_forces_zero_residual(self, fig1_system):
        matrix, operator, x = fig1_system
        projector = np.eye(23) - matrix @ operator
        support = list(range(23))
        bands = BandConstraints.unbounded(10)
        bands.require_at_least(0, x[0] + 50.0)
        solution = solve_manipulation_lp(
            operator, x, support, 23, bands, cap=2000.0, consistency_matrix=projector
        )
        assert solution.feasible
        residual = projector @ solution.manipulation
        assert np.abs(residual).max() < 1e-6

    def test_consistency_matrix_shape_checked(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        with pytest.raises(AttackError, match="consistency"):
            solve_manipulation_lp(
                operator, x, [0], 23, bands, consistency_matrix=np.eye(5)
            )

    def test_bad_support_row_rejected(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        with pytest.raises(AttackError, match="support row"):
            solve_manipulation_lp(operator, x, [99], 23, bands)

    def test_negative_cap_rejected(self, fig1_system):
        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        with pytest.raises(ValidationError):
            solve_manipulation_lp(operator, x, [0], 23, bands, cap=-5.0)


class TestIncrementalLpSolver:
    """Incremental band edits must be indistinguishable from re-assembly."""

    @staticmethod
    def _base_bands(x):
        bands = BandConstraints.unbounded(10)
        for j in range(5):
            bands.require_at_most(j, 99.0)
        bands.require_at_least(7, float(x[7]))
        return bands

    def test_override_matches_from_scratch(self, fig1_system):
        _, operator, x = fig1_system
        support = list(range(0, 23, 2))
        solver = IncrementalLpSolver(
            operator, x, support, 23, self._base_bands(x), cap=2000.0,
            engine="scipy",
        )
        for j in (5, 8, 9):
            scratch = self._base_bands(x)
            scratch.lower[j], scratch.upper[j] = 801.0, math.inf
            reference = solve_manipulation_lp(
                operator, x, support, 23, scratch, cap=2000.0
            )
            incremental = solver.solve({j: (801.0, math.inf)})
            assert incremental.feasible == reference.feasible
            if reference.feasible:
                assert np.array_equal(incremental.manipulation, reference.manipulation)
                assert incremental.damage == reference.damage

    def test_override_replaces_existing_band_rows(self, fig1_system):
        """Overriding a link that already has base rows swaps them out."""
        _, operator, x = fig1_system
        support = list(range(23))
        solver = IncrementalLpSolver(
            operator, x, support, 23, self._base_bands(x), cap=2000.0,
            engine="scipy",
        )
        scratch = BandConstraints.unbounded(10)
        for j in range(5):
            if j != 2:
                scratch.require_at_most(j, 99.0)
        scratch.require_at_least(7, float(x[7]))
        scratch.lower[2], scratch.upper[2] = 801.0, math.inf
        reference = solve_manipulation_lp(operator, x, support, 23, scratch, cap=2000.0)
        incremental = solver.solve({2: (801.0, math.inf)})
        assert incremental.feasible == reference.feasible
        if reference.feasible:
            assert np.array_equal(incremental.manipulation, reference.manipulation)

    def test_no_overrides_matches_base(self, fig1_system):
        _, operator, x = fig1_system
        support = [0, 1, 2]
        bands = self._base_bands(x)
        solver = IncrementalLpSolver(operator, x, support, 23, bands, cap=500.0)
        reference = solve_manipulation_lp(operator, x, support, 23, bands, cap=500.0)
        incremental = solver.solve()
        assert np.array_equal(incremental.manipulation, reference.manipulation)

    def test_unbounding_override_removes_rows(self, fig1_system):
        """Overriding to an unbounded band deletes the link's base rows."""
        _, operator, x = fig1_system
        support = [0, 1, 2]
        solver = IncrementalLpSolver(
            operator, x, support, 23, self._base_bands(x), cap=100.0
        )
        scratch = self._base_bands(x)
        scratch.lower[0], scratch.upper[0] = -math.inf, math.inf
        reference = solve_manipulation_lp(operator, x, support, 23, scratch, cap=100.0)
        incremental = solver.solve({0: (-math.inf, math.inf)})
        assert np.array_equal(incremental.manipulation, reference.manipulation)

    def test_consistency_matrix_applied(self, fig1_system):
        matrix, operator, x = fig1_system
        projector = np.eye(23) - matrix @ operator
        support = list(range(23))
        solver = IncrementalLpSolver(
            operator,
            x,
            support,
            23,
            BandConstraints.unbounded(10),
            cap=2000.0,
            consistency_matrix=projector,
        )
        solution = solver.solve({0: (float(x[0] + 50.0), math.inf)})
        assert solution.feasible
        assert np.abs(projector @ solution.manipulation).max() < 1e-6

    def test_empty_support_uses_baseline_check(self, fig1_system):
        _, operator, x = fig1_system
        solver = IncrementalLpSolver(
            operator, x, [], 23, BandConstraints.unbounded(10), cap=2000.0
        )
        assert solver.solve().feasible
        # A demanded estimate raise is impossible with no supported paths.
        assert not solver.solve({9: (float(x[9] + 100.0), math.inf)}).feasible

    def test_invalid_override_rejected(self, fig1_system):
        _, operator, x = fig1_system
        solver = IncrementalLpSolver(
            operator, x, [0], 23, BandConstraints.unbounded(10), cap=2000.0
        )
        with pytest.raises(ValidationError, match="empty band"):
            solver.solve({0: (10.0, 5.0)})
        with pytest.raises(AttackError, match="out of range"):
            solver.solve({99: (0.0, 1.0)})


class TestUnboundedResolve:
    def test_cap_none_single_assembly(self, fig1_system):
        """The unbounded re-solve path must reuse assembled constraints:
        exactly one lp_assembly stage entry for the whole call."""
        from repro.perf.instrumentation import PerfRecorder, recording

        _, operator, x = fig1_system
        bands = BandConstraints.unbounded(10)
        with recording(PerfRecorder()) as recorder:
            solution = solve_manipulation_lp(operator, x, [0, 1], 23, bands, cap=None)
        assert solution.unbounded
        assert recorder.stage_calls["lp_assembly"] == 1


class TestTheorem1Construction:
    def test_manipulation_is_r_delta(self, fig1_system):
        matrix, _, _ = fig1_system
        delta = np.zeros(10)
        delta[0] = 700.0
        m = theorem1_manipulation(matrix, delta)
        assert np.array_equal(m, matrix @ delta)

    def test_perfect_cut_construction_satisfies_constraint1(self, fig1_scenario):
        """Theorem 1: under a perfect cut, m = R*delta is zero off-support."""
        matrix = fig1_scenario.path_set.routing_matrix()
        # B, C perfectly cut link 0; delta supported on L_m ∪ {0}.
        delta = np.zeros(10)
        delta[0] = 750.0
        m = theorem1_manipulation(matrix, delta)
        support = set(
            fig1_scenario.path_set.paths_containing_any_node({"B", "C"})
        )
        for row in range(matrix.shape[0]):
            if row not in support:
                assert m[row] == 0.0
        assert np.all(m >= 0.0)
