"""Tests for chosen-victim scapegoating."""

import numpy as np
import pytest

from repro.attacks.base import AttackContext
from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.constraints import validate_manipulation_vector
from repro.exceptions import AttackConstraintError, ValidationError
from repro.metrics.states import LinkState


class TestValidation:
    def test_victim_overlapping_controlled_rejected(self, fig1_context):
        # Link 3 (A-C) is incident to attacker C.
        with pytest.raises(AttackConstraintError, match="disjoint"):
            ChosenVictimAttack(fig1_context, [3])

    def test_empty_victims_rejected(self, fig1_context):
        with pytest.raises(AttackConstraintError):
            ChosenVictimAttack(fig1_context, [])

    def test_out_of_range_victim(self, fig1_context):
        with pytest.raises(AttackConstraintError):
            ChosenVictimAttack(fig1_context, [99])

    def test_bad_mode(self, fig1_context):
        with pytest.raises(ValidationError):
            ChosenVictimAttack(fig1_context, [9], mode="bogus")


class TestPerfectCutVictim:
    """Link 0 (M1-A) is perfectly cut by B and C: attack must succeed."""

    @pytest.mark.parametrize("mode", ["paper", "exclusive"])
    def test_success(self, fig1_context, mode):
        outcome = ChosenVictimAttack(fig1_context, [0], mode=mode).run()
        assert outcome.feasible
        assert outcome.damage > 0

    def test_victim_looks_abnormal(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        assert outcome.diagnosis.state_of(0) is LinkState.ABNORMAL

    def test_attacker_links_look_normal(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        for j in fig1_context.controlled_links:
            assert outcome.diagnosis.state_of(j) is LinkState.NORMAL

    def test_manipulation_satisfies_constraint1(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        validate_manipulation_vector(
            outcome.manipulation,
            fig1_context.support,
            fig1_context.num_paths,
            cap=fig1_context.cap,
        )

    def test_cap_respected(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        assert float(outcome.manipulation.max()) <= fig1_context.cap + 1e-6

    def test_observed_equals_honest_plus_m(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        expected = fig1_context.honest_measurements() + outcome.manipulation
        assert np.allclose(outcome.observed_measurements, expected)


class TestImperfectCutVictim:
    """Link 9 (D-M2) is NOT perfectly cut — the paper's Fig. 4 case."""

    def test_still_succeeds(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        assert outcome.feasible
        assert outcome.diagnosis.state_of(9) is LinkState.ABNORMAL

    def test_exclusive_mode_blames_only_victim(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        assert outcome.diagnosis.abnormal == (9,)

    def test_exclusive_damage_not_above_paper_mode(self, fig1_context):
        loose = ChosenVictimAttack(fig1_context, [9], mode="paper").run()
        strict = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        assert strict.damage <= loose.damage + 1e-6

    def test_confined_stealthy_imperfect_cut_infeasible(self, fig1_context):
        """Estimate changes confined to L_m ∪ L_s *and* measurement
        consistency cannot coexist with an uncut victim path: the victim's
        shift would have to show on a path the attacker cannot touch —
        the Theorem 3 proof situation."""
        outcome = ChosenVictimAttack(
            fig1_context, [9], confined=True, stealthy=True
        ).run()
        assert not outcome.feasible

    def test_confined_perfect_cut_feasible(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0], confined=True).run()
        assert outcome.feasible


class TestStealth:
    def test_stealthy_perfect_cut_zero_residual(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0], stealthy=True).run()
        assert outcome.feasible
        matrix = fig1_scenario.path_set.routing_matrix()
        projector = np.eye(matrix.shape[0]) - matrix @ fig1_context.operator
        assert np.abs(projector @ outcome.manipulation).max() < 1e-6

    def test_stealthy_damage_not_above_plain(self, fig1_context):
        plain = ChosenVictimAttack(fig1_context, [0]).run()
        stealthy = ChosenVictimAttack(fig1_context, [0], stealthy=True).run()
        assert stealthy.damage <= plain.damage + 1e-6


class TestMultiVictim:
    def test_two_free_victims(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [8, 9], mode="paper").run()
        if outcome.feasible:
            assert outcome.diagnosis.state_of(8) is LinkState.ABNORMAL
            assert outcome.diagnosis.state_of(9) is LinkState.ABNORMAL

    def test_adding_victims_never_raises_damage(self, fig1_context):
        """Feasible region shrinks with more required victims."""
        single = ChosenVictimAttack(fig1_context, [9], mode="paper").run()
        double = ChosenVictimAttack(fig1_context, [8, 9], mode="paper").run()
        if double.feasible:
            assert double.damage <= single.damage + 1e-6


class TestOutcomeMetadata:
    def test_strategy_name(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        assert outcome.strategy == "chosen-victim"
        assert outcome.victim_links == (0,)
        assert outcome.extras["mode"] == "paper"

    def test_mean_path_measurement(self, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        assert outcome.mean_path_measurement == pytest.approx(
            float(np.mean(outcome.observed_measurements))
        )

    def test_infeasible_outcome_fields(self, fig1_context):
        outcome = ChosenVictimAttack(
            fig1_context, [9], confined=True, stealthy=True
        ).run()
        assert not outcome.feasible
        assert outcome.manipulation is None
        assert outcome.damage == 0.0
        assert outcome.diagnosis is None
        assert np.isnan(outcome.mean_path_measurement)
