"""Tests for perfect/imperfect cut analysis."""

import math

import pytest

from repro.attacks.cuts import (
    attack_presence_ratio,
    is_perfect_cut,
    perfectly_cut_links,
    uncut_victim_paths,
    victim_paths,
)
from repro.exceptions import AttackConstraintError
from repro.routing.paths import PathSet
from repro.topology.generators.simple import paper_example_network


class TestVictimPaths:
    def test_rows_contain_victim(self, fig1_scenario):
        rows = victim_paths(fig1_scenario.path_set, [9])
        for row in rows:
            assert fig1_scenario.path_set.path(row).contains_link(9)

    def test_empty_victims_rejected(self, fig1_scenario):
        with pytest.raises(AttackConstraintError):
            victim_paths(fig1_scenario.path_set, [])


class TestPerfectCut:
    def test_b_c_perfectly_cut_link_1(self, fig1_scenario):
        """Link 0 (M1-A): A's only other neighbours are B and C."""
        assert is_perfect_cut(fig1_scenario.path_set, ["B", "C"], [0])

    def test_b_c_do_not_cut_link_10(self, fig1_scenario):
        """Link 9 (D-M2): path M3-D-M2 avoids B and C — the paper's Fig. 4 case."""
        assert not is_perfect_cut(fig1_scenario.path_set, ["B", "C"], [9])

    def test_uncut_paths_avoid_attackers(self, fig1_scenario):
        rows = uncut_victim_paths(fig1_scenario.path_set, ["B", "C"], [9])
        assert rows
        for row in rows:
            path = fig1_scenario.path_set.path(row)
            assert path.contains_link(9)
            assert not path.contains_any_node({"B", "C"})

    def test_vacuous_cut_for_unmeasured_link(self):
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        # Link 0 is on no path: vacuously perfectly cut.
        assert is_perfect_cut(ps, ["B"], [0])


class TestPresenceRatio:
    def test_perfect_cut_has_ratio_one(self, fig1_scenario):
        assert attack_presence_ratio(fig1_scenario.path_set, ["B", "C"], [0]) == 1.0

    def test_imperfect_cut_below_one(self, fig1_scenario):
        ratio = attack_presence_ratio(fig1_scenario.path_set, ["B", "C"], [9])
        assert 0.0 < ratio < 1.0

    def test_absent_attacker_has_ratio_zero(self, fig1_scenario):
        """M1 is on no path crossing link 9 except via A..B/C? Check a true zero."""
        # Link 8 (M3-D): does any path cross both link 8 and node M1?
        ratio = attack_presence_ratio(fig1_scenario.path_set, ["M1"], [8])
        rows = victim_paths(fig1_scenario.path_set, [8])
        manual = sum(
            1 for r in rows if fig1_scenario.path_set.path(r).contains_node("M1")
        ) / len(rows)
        assert ratio == pytest.approx(manual)

    def test_unmeasured_victim_gives_nan(self):
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        assert math.isnan(attack_presence_ratio(ps, ["B"], [0]))

    def test_ratio_counts_exactly(self, fig1_scenario):
        rows = victim_paths(fig1_scenario.path_set, [9])
        covered = [
            r
            for r in rows
            if fig1_scenario.path_set.path(r).contains_any_node({"B", "C"})
        ]
        expected = len(covered) / len(rows)
        assert attack_presence_ratio(
            fig1_scenario.path_set, ["B", "C"], [9]
        ) == pytest.approx(expected)


class TestPerfectlyCutLinks:
    def test_fig1_bc_cut_exactly_link_0(self, fig1_scenario):
        controlled = fig1_scenario.topology.links_incident_to_nodes(["B", "C"])
        cut = perfectly_cut_links(
            fig1_scenario.path_set, ["B", "C"], exclude_links=controlled
        )
        assert cut == [0]

    def test_every_reported_link_is_perfectly_cut(self, fig1_scenario):
        for attacker in ["A", "B", "C", "D"]:
            controlled = fig1_scenario.topology.links_incident_to_nodes([attacker])
            for link in perfectly_cut_links(
                fig1_scenario.path_set, [attacker], exclude_links=controlled
            ):
                assert is_perfect_cut(fig1_scenario.path_set, [attacker], [link])

    def test_excluded_links_never_reported(self, fig1_scenario):
        controlled = fig1_scenario.topology.links_incident_to_nodes(["B", "C"])
        cut = perfectly_cut_links(
            fig1_scenario.path_set, ["B", "C"], exclude_links=controlled
        )
        assert not set(cut) & controlled
