"""Property-based tests encoding the paper's theorems.

Random small scenarios are generated per example; the theorems must hold on
every one of them:

- **Theorem 1**: a perfect cut makes chosen-victim scapegoating feasible
  (we use the constructive check with an uncapped context — the cap is a
  practical constraint the theorem does not model).
- **Theorem 3 (undetectable direction)**: under a perfect cut a stealthy
  solution exists with exactly zero residual.
- **Theorem 3 (detectable direction)**: confined attacks that succeed
  under an imperfect cut always leave a residual above the victim shift.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.cuts import is_perfect_cut, perfectly_cut_links
from repro.detection.consistency import ConsistencyDetector
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.routing.selection import select_identifiable_paths
from repro.scenarios.scenario import Scenario
from repro.topology.generators.simple import grid_topology, ladder_topology
from repro.utils.linalg import column_rank


def _build_scenario(kind: str, seed: int) -> Scenario:
    """A random *fully identifiable* scenario (the paper's assumption).

    Monitors are added until the selected paths reach full column rank;
    the theorems presuppose eq. (2) is well posed, so rank-deficient
    samples would test a different (pseudo-inverse) estimator.
    """
    if kind == "grid":
        topology = grid_topology(3, 3)
    else:
        topology = ladder_topology(4)
    nodes = topology.nodes()
    rng = np.random.default_rng(seed)
    order = list(range(len(nodes)))
    rng.shuffle(order)
    count = max(3, (2 * topology.num_nodes) // 3)
    path_set = None
    while count <= topology.num_nodes:
        monitors = [nodes[i] for i in order[:count]]
        path_set = select_identifiable_paths(
            topology, monitors, redundancy=3, max_per_pair=30, rng=rng
        )
        if column_rank(path_set.routing_matrix()) == topology.num_links:
            break
        count += 1
    metrics = uniform_delay_metrics(topology, rng=rng)
    return Scenario(
        topology=topology,
        monitors=tuple(monitors),
        path_set=path_set,
        true_metrics=metrics,
        cap=None,  # theorems do not model the practical cap
        name=f"{kind}-{seed}",
    )


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(["grid", "ladder"]),
    seed=st.integers(0, 10_000),
    attacker_index=st.integers(0, 100),
)
def test_theorem1_perfect_cut_implies_feasibility(kind, seed, attacker_index):
    scenario = _build_scenario(kind, seed)
    nodes = scenario.topology.nodes()
    attacker = nodes[attacker_index % len(nodes)]
    context = scenario.attack_context([attacker])
    cut = perfectly_cut_links(
        scenario.path_set, [attacker], exclude_links=context.controlled_links
    )
    assume(cut)
    victim = cut[0]
    assert is_perfect_cut(scenario.path_set, [attacker], [victim])
    outcome = ChosenVictimAttack(context, [victim]).run()
    assert outcome.feasible


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(["grid", "ladder"]),
    seed=st.integers(0, 10_000),
    attacker_index=st.integers(0, 100),
)
def test_theorem3_perfect_cut_undetectable(kind, seed, attacker_index):
    scenario = _build_scenario(kind, seed)
    nodes = scenario.topology.nodes()
    attacker = nodes[attacker_index % len(nodes)]
    context = scenario.attack_context([attacker])
    cut = perfectly_cut_links(
        scenario.path_set, [attacker], exclude_links=context.controlled_links
    )
    assume(cut)
    outcome = ChosenVictimAttack(context, [cut[0]], stealthy=True, confined=True).run()
    assert outcome.feasible  # Theorem 1's construction is stealthy + confined
    # alpha far below any real manipulation (hundreds of ms) but above LP
    # solver round-off on the stealth equality constraints.
    detector = ConsistencyDetector(scenario.path_set.routing_matrix(), alpha=1e-2)
    result = detector.check(outcome.observed_measurements)
    assert not result.detected


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["grid", "ladder"]),
    seed=st.integers(0, 10_000),
    attacker_index=st.integers(0, 100),
)
def test_theorem3_imperfect_cut_confined_attack_detected(kind, seed, attacker_index):
    """Every feasible confined attack on an imperfectly cut victim is caught.

    Confined imperfect-cut attacks are often infeasible; the test scans all
    imperfect victims and asserts detection on every feasible one (skipping
    samples with none feasible).
    """
    scenario = _build_scenario(kind, seed)
    nodes = scenario.topology.nodes()
    attacker = nodes[attacker_index % len(nodes)]
    context = scenario.attack_context([attacker])
    imperfect = [
        link.index
        for link in scenario.topology.links()
        if link.index not in context.controlled_links
        and scenario.path_set.paths_containing_link(link.index)
        and not is_perfect_cut(scenario.path_set, [attacker], [link.index])
    ]
    assume(imperfect)
    detector = ConsistencyDetector(scenario.path_set.routing_matrix(), alpha=200.0)
    any_feasible = False
    for victim in imperfect:
        outcome = ChosenVictimAttack(context, [victim], confined=True).run()
        if not outcome.feasible:
            continue
        any_feasible = True
        result = detector.check(outcome.observed_measurements)
        assert result.detected
    assume(any_feasible)


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(["grid", "ladder"]),
    seed=st.integers(0, 10_000),
    attacker_index=st.integers(0, 100),
)
def test_constraint1_always_satisfied_by_lp_solutions(kind, seed, attacker_index):
    """Whatever the LP returns must satisfy Constraint 1 exactly."""
    scenario = _build_scenario(kind, seed)
    nodes = scenario.topology.nodes()
    attacker = nodes[attacker_index % len(nodes)]
    context = scenario.attack_context([attacker])
    candidates = [
        j
        for j in range(context.num_links)
        if j not in context.controlled_links
        and scenario.path_set.paths_containing_link(j)
    ]
    assume(candidates)
    outcome = ChosenVictimAttack(context, [candidates[0]]).run()
    assume(outcome.feasible)
    m = outcome.manipulation
    assert np.all(m >= -1e-9)
    support = set(context.support)
    for row in range(context.num_paths):
        if row not in support:
            assert abs(m[row]) < 1e-9
