"""Tests for compromise planning (minimum perfect-cut node sets)."""

import pytest

from repro.attacks.compromise import (
    compromise_budget_ranking,
    minimum_perfect_cut_nodes,
)
from repro.attacks.cuts import is_perfect_cut
from repro.exceptions import AttackConstraintError
from repro.routing.paths import PathSet
from repro.topology.generators.simple import paper_example_network


class TestMinimumPerfectCut:
    def test_recovers_paper_attackers_for_link_1(self, fig1_scenario):
        """The paper's example: B and C are exactly the nodes that cut
        link 1 (M1-A) from every measurement path."""
        nodes = minimum_perfect_cut_nodes(fig1_scenario.path_set, [0])
        assert nodes is not None
        assert set(nodes) == {"B", "C"}

    def test_result_is_a_perfect_cut(self, fig1_scenario):
        for link in fig1_scenario.topology.links():
            nodes = minimum_perfect_cut_nodes(fig1_scenario.path_set, [link.index])
            if nodes:
                assert is_perfect_cut(fig1_scenario.path_set, nodes, [link.index])

    def test_victim_endpoints_never_chosen(self, fig1_scenario):
        for link in fig1_scenario.topology.links():
            nodes = minimum_perfect_cut_nodes(fig1_scenario.path_set, [link.index])
            if nodes:
                assert link.u not in nodes
                assert link.v not in nodes

    def test_forbidden_nodes_respected(self, fig1_scenario):
        nodes = minimum_perfect_cut_nodes(
            fig1_scenario.path_set, [0], forbidden={"B"}
        )
        if nodes is not None:
            assert "B" not in nodes
            assert is_perfect_cut(fig1_scenario.path_set, nodes, [0])

    def test_max_nodes_budget(self, fig1_scenario):
        unbounded = minimum_perfect_cut_nodes(fig1_scenario.path_set, [9])
        assert unbounded is not None
        capped = minimum_perfect_cut_nodes(
            fig1_scenario.path_set, [9], max_nodes=len(unbounded) - 1
        )
        assert capped is None

    def test_impossible_cut_returns_none(self):
        """A one-hop victim path leaves no eligible interior node."""
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        # Victim = link M3-D (index 8); its only path's nodes are
        # M3, D (endpoints, blocked) and M2.
        nodes = minimum_perfect_cut_nodes(ps, [8], forbidden={"M2"})
        assert nodes is None

    def test_unmeasured_victim_is_vacuous(self):
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        assert minimum_perfect_cut_nodes(ps, [0]) == []

    def test_empty_victims_rejected(self, fig1_scenario):
        with pytest.raises(AttackConstraintError):
            minimum_perfect_cut_nodes(fig1_scenario.path_set, [])

    def test_multi_victim_cut(self, fig1_scenario):
        nodes = minimum_perfect_cut_nodes(fig1_scenario.path_set, [0, 8])
        if nodes is not None:
            assert is_perfect_cut(fig1_scenario.path_set, nodes, [0, 8])

    def test_deterministic(self, fig1_scenario):
        a = minimum_perfect_cut_nodes(fig1_scenario.path_set, [9])
        b = minimum_perfect_cut_nodes(fig1_scenario.path_set, [9])
        assert a == b


class TestBudgetRanking:
    def test_covers_all_measured_links(self, fig1_scenario):
        ranking = compromise_budget_ranking(fig1_scenario.path_set)
        measured = {
            link.index
            for link in fig1_scenario.topology.links()
            if fig1_scenario.path_set.paths_containing_link(link.index)
        }
        assert {r["link"] for r in ranking} == measured

    def test_sorted_by_budget(self, fig1_scenario):
        ranking = compromise_budget_ranking(fig1_scenario.path_set)
        budgets = [r["budget"] for r in ranking if r["budget"] is not None]
        assert budgets == sorted(budgets)
        # Impossible entries (None) sort last.
        nones = [i for i, r in enumerate(ranking) if r["budget"] is None]
        assert all(i >= len(budgets) for i in nones)

    def test_budgets_consistent_with_node_lists(self, fig1_scenario):
        for record in compromise_budget_ranking(fig1_scenario.path_set):
            if record["budget"] is not None:
                assert record["budget"] == len(record["nodes"])
                assert is_perfect_cut(
                    fig1_scenario.path_set, record["nodes"], [record["link"]]
                )
