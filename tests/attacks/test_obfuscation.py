"""Tests for obfuscation attacks."""

import pytest

import numpy as np

from repro.attacks.obfuscation import ObfuscationAttack, build_obfuscation_bands
from repro.exceptions import ValidationError
from repro.metrics.states import LinkState


class TestBuildObfuscationBands:
    def test_paper_mode_pins_only_the_obfuscated_set(self, fig1_context):
        bands = build_obfuscation_bands(fig1_context, [3, 5])
        lower = fig1_context.thresholds.lower + fig1_context.margin
        upper = fig1_context.thresholds.upper - fig1_context.margin
        for j in (3, 5):
            assert bands.lower[j] == lower
            assert bands.upper[j] == upper
        others = [j for j in range(fig1_context.num_links) if j not in (3, 5)]
        assert np.all(np.isinf(bands.upper[others]))

    def test_exclusive_mode_bounds_every_other_link_normal(self, fig1_context):
        bands = build_obfuscation_bands(fig1_context, [3], mode="exclusive")
        normal = fig1_context.thresholds.lower - fig1_context.margin
        others = [j for j in range(fig1_context.num_links) if j != 3]
        assert np.all(bands.upper[others] <= normal)


class TestObfuscation:
    def test_fig1_all_links_uncertain(self, fig1_context):
        """B and C can push the whole network into the uncertain band."""
        outcome = ObfuscationAttack(fig1_context, min_victims=1).run()
        assert outcome.feasible
        for j in list(outcome.victim_links) + sorted(fig1_context.controlled_links):
            assert outcome.diagnosis.state_of(j) is LinkState.UNCERTAIN

    def test_victims_exclude_controlled(self, fig1_context):
        outcome = ObfuscationAttack(fig1_context, min_victims=1).run()
        assert not set(outcome.victim_links) & set(fig1_context.controlled_links)

    def test_min_victims_enforced(self, fig1_context):
        """Only 3 non-controlled links exist, so demanding 5 must fail."""
        outcome = ObfuscationAttack(fig1_context, min_victims=5).run()
        assert not outcome.feasible

    def test_max_victims_caps_growth(self, fig1_context):
        outcome = ObfuscationAttack(fig1_context, min_victims=1, max_victims=1).run()
        assert outcome.feasible
        assert len(outcome.victim_links) == 1

    def test_damage_positive(self, fig1_context):
        outcome = ObfuscationAttack(fig1_context, min_victims=1).run()
        assert outcome.damage > 0

    def test_exclusive_mode_keeps_others_normal(self, fig1_context):
        outcome = ObfuscationAttack(
            fig1_context, min_victims=1, max_victims=1, mode="exclusive"
        ).run()
        if outcome.feasible:
            obfuscated = set(outcome.victim_links) | set(fig1_context.controlled_links)
            for j in range(fig1_context.num_links):
                if j not in obfuscated:
                    assert outcome.diagnosis.state_of(j) is LinkState.NORMAL

    def test_greedy_is_monotone(self, fig1_context):
        """Growing max_victims never decreases the accepted victim count."""
        small = ObfuscationAttack(fig1_context, min_victims=1, max_victims=1).run()
        large = ObfuscationAttack(fig1_context, min_victims=1).run()
        assert len(large.victim_links) >= len(small.victim_links)

    def test_candidate_restriction(self, fig1_context):
        outcome = ObfuscationAttack(
            fig1_context, min_victims=1, candidate_links=[9]
        ).run()
        if outcome.feasible:
            assert outcome.victim_links == (9,)

    def test_controlled_candidate_rejected(self, fig1_context):
        with pytest.raises(ValidationError, match="attacker-controlled"):
            ObfuscationAttack(fig1_context, candidate_links=[1])

    def test_validation(self, fig1_context):
        with pytest.raises(ValidationError):
            ObfuscationAttack(fig1_context, min_victims=0)
        with pytest.raises(ValidationError):
            ObfuscationAttack(fig1_context, min_victims=3, max_victims=2)
        with pytest.raises(ValidationError):
            ObfuscationAttack(fig1_context, mode="bogus")

    def test_extras_record_search(self, fig1_context):
        outcome = ObfuscationAttack(fig1_context, min_victims=1).run()
        assert outcome.extras["num_victims"] == len(outcome.victim_links)
        assert outcome.extras["min_victims"] == 1
