"""Tests for the naive delay-everything baseline."""

import numpy as np
import pytest

from repro.attacks.naive import NaiveDelayAttack
from repro.exceptions import ValidationError


class TestNaiveAttack:
    def test_uniform_delay_on_support(self, fig1_context):
        outcome = NaiveDelayAttack(fig1_context, per_path_delay=500.0).run()
        m = outcome.manipulation
        support = np.asarray(fig1_context.support)
        assert np.all(m[support] == 500.0)
        off = [i for i in range(fig1_context.num_paths) if i not in set(fig1_context.support)]
        assert np.all(m[off] == 0.0)

    def test_damage_is_delay_times_paths(self, fig1_context):
        outcome = NaiveDelayAttack(fig1_context, per_path_delay=500.0).run()
        assert outcome.damage == pytest.approx(500.0 * len(fig1_context.support))

    def test_defaults_to_cap(self, fig1_context):
        outcome = NaiveDelayAttack(fig1_context).run()
        assert float(outcome.manipulation.max()) == fig1_context.cap

    def test_full_budget_exposes_attacker(self, fig1_context):
        """At the cap, the worst-looking link is attacker-controlled."""
        outcome = NaiveDelayAttack(fig1_context).run()
        worst = int(np.argmax(outcome.predicted_estimate))
        assert worst in fig1_context.controlled_links
        assert outcome.extras["exposed_controlled_links"]
        assert not outcome.extras["stealthy"]

    def test_no_framed_victims(self, fig1_context):
        outcome = NaiveDelayAttack(fig1_context).run()
        assert outcome.victim_links == ()
        assert outcome.strategy == "naive"

    def test_zero_delay_is_harmless(self, fig1_context):
        outcome = NaiveDelayAttack(fig1_context, per_path_delay=0.0).run()
        assert outcome.damage == 0.0
        assert outcome.extras["stealthy"]  # nothing to expose

    def test_delay_above_cap_rejected(self, fig1_context):
        with pytest.raises(ValidationError):
            NaiveDelayAttack(fig1_context, per_path_delay=99999.0)

    def test_negative_delay_rejected(self, fig1_context):
        with pytest.raises(ValidationError):
            NaiveDelayAttack(fig1_context, per_path_delay=-1.0)
