"""Shared contract tests: every strategy obeys the same invariants.

Whatever the strategy, a feasible outcome must: satisfy Constraint 1
exactly, respect the per-path cap, compose observations as
``y' = y + m`` (eq. 3), report damage as ``||m||_1`` (Definition 2),
produce a diagnosis consistent with its own predicted estimate, and never
scapegoat an attacker-controlled link.
"""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.constraints import validate_manipulation_vector
from repro.attacks.hybrid import FrameAndBlurAttack
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.naive import NaiveDelayAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.metrics.states import classify_vector
from repro.tomography.linear_system import estimator_operator


def _strategies(context):
    return {
        "chosen-victim-perfect": ChosenVictimAttack(context, [0]),
        "chosen-victim-imperfect": ChosenVictimAttack(context, [9], mode="exclusive"),
        "chosen-victim-stealthy": ChosenVictimAttack(context, [0], stealthy=True),
        "max-damage": MaxDamageAttack(context),
        "obfuscation": ObfuscationAttack(context, min_victims=1),
        "frame-and-blur": FrameAndBlurAttack(context, [9]),
        "naive": NaiveDelayAttack(context, per_path_delay=500.0),
    }


@pytest.fixture(scope="module")
def outcomes(fig1_context):
    results = {name: attack.run() for name, attack in _strategies(fig1_context).items()}
    for name, outcome in results.items():
        assert outcome.feasible, f"{name} unexpectedly infeasible"
    return results


class TestStrategyContract:
    def test_constraint1_and_cap(self, fig1_context, outcomes):
        for name, outcome in outcomes.items():
            validate_manipulation_vector(
                outcome.manipulation,
                fig1_context.support,
                fig1_context.num_paths,
                cap=fig1_context.cap,
            )

    def test_observation_composition(self, fig1_context, outcomes):
        honest = fig1_context.honest_measurements()
        for name, outcome in outcomes.items():
            assert np.allclose(
                outcome.observed_measurements, honest + outcome.manipulation
            ), name

    def test_damage_definition(self, outcomes):
        for name, outcome in outcomes.items():
            assert outcome.damage == pytest.approx(
                float(np.sum(outcome.manipulation))
            ), name

    def test_predicted_estimate_matches_operator_algebra(
        self, fig1_scenario, fig1_context, outcomes
    ):
        operator = estimator_operator(fig1_scenario.path_set.routing_matrix())
        for name, outcome in outcomes.items():
            expected = operator @ outcome.observed_measurements
            assert np.allclose(outcome.predicted_estimate, expected, atol=1e-8), name

    def test_diagnosis_consistent_with_estimate(self, fig1_scenario, outcomes):
        for name, outcome in outcomes.items():
            states = classify_vector(
                outcome.predicted_estimate, fig1_scenario.thresholds
            )
            assert list(states) == list(outcome.diagnosis.states), name

    def test_victims_never_attacker_controlled(self, fig1_context, outcomes):
        for name, outcome in outcomes.items():
            assert not (
                set(outcome.victim_links) & set(fig1_context.controlled_links)
            ), name

    def test_strategy_names_distinct(self, outcomes):
        names = {outcome.strategy for outcome in outcomes.values()}
        assert names == {
            "chosen-victim",
            "max-damage",
            "obfuscation",
            "frame-and-blur",
            "naive",
        }

    def test_nonzero_entries_only_on_attacker_paths(self, fig1_scenario, outcomes):
        for name, outcome in outcomes.items():
            for row, value in enumerate(outcome.manipulation):
                if value > 1e-9:
                    path = fig1_scenario.path_set.path(row)
                    assert path.contains_any_node({"B", "C"}), (name, row)
