"""Tests for Constraint-1 machinery."""

import numpy as np
import pytest

from repro.attacks.constraints import (
    attacker_links,
    manipulable_paths,
    validate_manipulation_vector,
)
from repro.exceptions import AttackConstraintError
from repro.topology.generators.simple import paper_example_network


class TestAttackerLinks:
    def test_b_and_c_control_links_2_to_8(self, fig1_scenario):
        links = attacker_links(fig1_scenario.topology, ["B", "C"])
        assert links == {1, 2, 3, 4, 5, 6, 7}

    def test_single_attacker(self):
        topo = paper_example_network()
        assert attacker_links(topo, ["D"]) == {4, 6, 8, 9}

    def test_empty_set_rejected(self):
        with pytest.raises(AttackConstraintError):
            attacker_links(paper_example_network(), [])

    def test_unknown_node_rejected(self):
        with pytest.raises(AttackConstraintError):
            attacker_links(paper_example_network(), ["ghost"])


class TestManipulablePaths:
    def test_support_rows_contain_attacker(self, fig1_scenario):
        support = manipulable_paths(fig1_scenario.path_set, ["B", "C"])
        for row in support:
            assert fig1_scenario.path_set.path(row).contains_any_node({"B", "C"})

    def test_non_support_rows_avoid_attacker(self, fig1_scenario):
        support = set(manipulable_paths(fig1_scenario.path_set, ["B", "C"]))
        for row in range(fig1_scenario.path_set.num_paths):
            if row not in support:
                assert not fig1_scenario.path_set.path(row).contains_any_node({"B", "C"})

    def test_monitor_attacker_supported(self, fig1_scenario):
        """Monitors can be malicious: every path from M1 is manipulable."""
        support = manipulable_paths(fig1_scenario.path_set, ["M1"])
        expected = fig1_scenario.path_set.paths_containing_node("M1")
        assert support == expected
        assert support  # M1 sources several paths

    def test_empty_attackers_rejected(self, fig1_scenario):
        with pytest.raises(AttackConstraintError):
            manipulable_paths(fig1_scenario.path_set, [])


class TestValidateManipulation:
    def test_valid_vector(self):
        m = validate_manipulation_vector([0.0, 5.0, 0.0], [1], 3)
        assert m.tolist() == [0.0, 5.0, 0.0]

    def test_wrong_shape(self):
        with pytest.raises(AttackConstraintError, match="shape"):
            validate_manipulation_vector([1.0], [0], 3)

    def test_negative_entry(self):
        with pytest.raises(AttackConstraintError, match="non-negative"):
            validate_manipulation_vector([-1.0, 0.0], [0], 2)

    def test_off_support_manipulation(self):
        with pytest.raises(AttackConstraintError, match="no attacker"):
            validate_manipulation_vector([0.0, 3.0], [0], 2)

    def test_cap_enforced(self):
        with pytest.raises(AttackConstraintError, match="cap"):
            validate_manipulation_vector([0.0, 3000.0], [1], 2, cap=2000.0)

    def test_cap_tolerance(self):
        m = validate_manipulation_vector([2000.0 + 1e-12], [0], 1, cap=2000.0)
        assert m.shape == (1,)

    def test_nan_rejected(self):
        with pytest.raises(AttackConstraintError, match="finite"):
            validate_manipulation_vector([float("nan")], [0], 1)

    def test_round_off_negative_tolerated(self):
        m = validate_manipulation_vector([-1e-12, 1.0], [0, 1], 2)
        assert m[1] == 1.0
