"""Tests for compiling manipulation vectors into simulator agents."""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.planner import compile_attack_plan
from repro.exceptions import AttackConstraintError


class TestCompile:
    def test_agents_only_at_attacker_nodes(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        plan = compile_attack_plan(
            fig1_scenario.path_set, ["B", "C"], outcome.manipulation
        )
        assert set(plan.agents) <= {"B", "C"}

    def test_total_damage_preserved(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        plan = compile_attack_plan(
            fig1_scenario.path_set, ["B", "C"], outcome.manipulation
        )
        agent_total = sum(a.total_planned_delay() for a in plan.agents.values())
        assert agent_total == pytest.approx(outcome.damage)
        assert plan.total_damage == pytest.approx(outcome.damage)

    def test_assignment_nodes_on_their_paths(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0]).run()
        plan = compile_attack_plan(
            fig1_scenario.path_set, ["B", "C"], outcome.manipulation
        )
        for row, node in plan.assignment.items():
            assert fig1_scenario.path_set.path(row).contains_node(node)

    def test_interior_attacker_preferred_over_destination(self, fig1_scenario):
        """When an attacker is the destination monitor but another attacker is
        interior on the same path, the interior one carries the delay."""
        context = fig1_scenario.attack_context(["B", "M2"])
        m = np.zeros(fig1_scenario.path_set.num_paths)
        # Pick a supported path ending at M2 that also crosses B.
        target_row = None
        for row in fig1_scenario.path_set.paths_containing_node("B"):
            path = fig1_scenario.path_set.path(row)
            if path.target == "M2":
                target_row = row
                break
        assert target_row is not None
        m[target_row] = 100.0
        plan = compile_attack_plan(fig1_scenario.path_set, ["B", "M2"], m)
        assert plan.assignment[target_row] == "B"

    def test_zero_entries_produce_no_actions(self, fig1_scenario):
        m = np.zeros(fig1_scenario.path_set.num_paths)
        plan = compile_attack_plan(fig1_scenario.path_set, ["B"], m)
        assert plan.agents == {}
        assert plan.assignment == {}
        assert plan.agent_for("B") is None

    def test_constraint1_violation_rejected(self, fig1_scenario):
        m = np.zeros(fig1_scenario.path_set.num_paths)
        # Find a path without B and try to manipulate it.
        support = set(fig1_scenario.path_set.paths_containing_node("B"))
        off = next(i for i in range(fig1_scenario.path_set.num_paths) if i not in support)
        m[off] = 10.0
        with pytest.raises(AttackConstraintError):
            compile_attack_plan(fig1_scenario.path_set, ["B"], m)

    def test_cap_checked(self, fig1_scenario):
        row = fig1_scenario.path_set.paths_containing_node("B")[0]
        m = np.zeros(fig1_scenario.path_set.num_paths)
        m[row] = 5000.0
        with pytest.raises(AttackConstraintError, match="cap"):
            compile_attack_plan(fig1_scenario.path_set, ["B"], m, cap=2000.0)

    def test_manipulation_copied(self, fig1_scenario):
        row = fig1_scenario.path_set.paths_containing_node("B")[0]
        m = np.zeros(fig1_scenario.path_set.num_paths)
        m[row] = 10.0
        plan = compile_attack_plan(fig1_scenario.path_set, ["B"], m)
        m[row] = 999.0
        assert plan.manipulation[row] == 10.0
