"""Tests for the trimmed-least-squares robust estimator."""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.detection.robust import TrimmedLeastSquares
from repro.exceptions import DetectionError


class TestHonestData:
    def test_nothing_excluded(self, fig1_scenario):
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        result = tls.estimate(fig1_scenario.honest_measurements())
        assert result.converged
        assert result.excluded_paths == ()
        assert np.allclose(result.estimate, fig1_scenario.true_metrics)


class TestSinglePathTamper:
    def test_tampered_row_excluded_and_truth_recovered(self, fig1_scenario):
        y = fig1_scenario.honest_measurements()
        y[4] += 1500.0
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        result = tls.estimate(y)
        assert result.converged
        assert 4 in result.excluded_paths
        assert np.allclose(result.estimate, fig1_scenario.true_metrics, atol=1e-6)

    def test_two_tampered_rows(self, fig1_scenario):
        y = fig1_scenario.honest_measurements()
        y[2] += 900.0
        y[11] += 1200.0
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        result = tls.estimate(y)
        assert result.converged
        assert {2, 11} <= set(result.excluded_paths)
        assert np.allclose(result.estimate, fig1_scenario.true_metrics, atol=1e-6)


class TestAgainstAttacks:
    def test_stealthy_perfect_cut_attack_not_repairable(self, fig1_scenario, fig1_context):
        """Consistent forgeries leave nothing to trim (Theorem 3)."""
        outcome = ChosenVictimAttack(fig1_context, [0], stealthy=True).run()
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        result = tls.estimate(outcome.observed_measurements)
        assert result.converged
        assert result.excluded_paths == ()
        # The robust estimate still blames the scapegoat.
        assert result.estimate[0] > fig1_scenario.thresholds.upper

    def test_broad_attack_reported_unrecoverable_or_cleaned(
        self, fig1_scenario, fig1_context
    ):
        """An attack touching most rows either exhausts the trimming budget
        (converged=False) or, if trimming converges, the surviving rows tell
        a different story than the forged ones."""
        outcome = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        result = tls.estimate(outcome.observed_measurements)
        if not result.converged:
            assert result.final_max_residual > tls.residual_tolerance
        else:
            assert result.num_excluded > 0

    def test_max_exclusions_budget(self, fig1_scenario):
        y = fig1_scenario.honest_measurements()
        y[0] += 500.0
        y[1] += 500.0
        y[2] += 500.0
        tls = TrimmedLeastSquares(
            fig1_scenario.path_set.routing_matrix(), max_exclusions=1
        )
        result = tls.estimate(y)
        assert result.num_excluded <= 1


class TestRankGuard:
    def test_never_sacrifices_identifiability(self, fig1_scenario):
        """However bad the data, retained rows keep full column rank."""
        rng = np.random.default_rng(0)
        y = rng.random(fig1_scenario.path_set.num_paths) * 3000.0
        matrix = fig1_scenario.path_set.routing_matrix()
        tls = TrimmedLeastSquares(matrix)
        result = tls.estimate(y)
        kept = [
            i
            for i in range(matrix.shape[0])
            if i not in set(result.excluded_paths)
        ]
        assert np.linalg.matrix_rank(matrix[kept]) == matrix.shape[1]  # repro: noqa RP001 (reference check)

    def test_square_system_cannot_trim(self):
        matrix = np.eye(4)
        tls = TrimmedLeastSquares(matrix)
        y = np.array([1.0, 2.0, 3.0, 4000.0])
        result = tls.estimate(y)
        # Square system: everything is consistent, nothing to trim.
        assert result.converged
        assert result.excluded_paths == ()


class TestValidation:
    def test_bad_tolerance(self, fig1_scenario):
        with pytest.raises(DetectionError):
            TrimmedLeastSquares(
                fig1_scenario.path_set.routing_matrix(), residual_tolerance=0.0
            )

    def test_bad_shape(self, fig1_scenario):
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        with pytest.raises(DetectionError):
            tls.estimate(np.ones(3))

    def test_nonfinite_rejected(self, fig1_scenario):
        tls = TrimmedLeastSquares(fig1_scenario.path_set.routing_matrix())
        y = fig1_scenario.honest_measurements()
        y[0] = float("nan")
        with pytest.raises(DetectionError):
            tls.estimate(y)
