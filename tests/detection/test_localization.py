"""Tests for residual localization."""

import numpy as np

from repro.detection.consistency import ConsistencyDetector
from repro.detection.localization import suspicious_paths, witness_report


class TestSuspiciousPaths:
    def test_clean_round_has_no_suspicious_paths(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        result = detector.check(fig1_scenario.honest_measurements())
        assert suspicious_paths(result) == []

    def test_tampered_path_ranks_first(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements()
        y[5] += 2000.0
        result = detector.check(y)
        rows = suspicious_paths(result)
        assert rows
        assert rows[0] == 5

    def test_rows_sorted_by_magnitude(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements()
        y[3] += 900.0
        y[7] += 1800.0
        result = detector.check(y)
        rows = suspicious_paths(result)
        magnitudes = np.abs(result.per_path_residual)[rows]
        assert all(a >= b for a, b in zip(magnitudes, magnitudes[1:]))

    def test_custom_threshold(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements()
        y[2] += 600.0
        result = detector.check(y)
        assert suspicious_paths(result, per_path_threshold=1e9) == []


class TestWitnessReport:
    def test_implicated_links_lie_on_suspicious_paths(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements()
        y[4] += 1500.0
        result = detector.check(y)
        report = witness_report(fig1_scenario.path_set, result)
        assert report["num_suspicious"] == len(report["suspicious_paths"])
        suspicious_links = set()
        for row in report["suspicious_paths"]:
            suspicious_links |= set(fig1_scenario.path_set.path(row).link_indices)
        assert set(report["implicated_links"]) <= suspicious_links

    def test_top_links_limit(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements() + 500.0
        result = detector.check(y)
        report = witness_report(fig1_scenario.path_set, result, top_links=2)
        assert len(report["implicated_links"]) <= 2

    def test_hit_counts_match_ranking(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements()
        y[0] += 1000.0
        y[1] += 1000.0
        result = detector.check(y)
        report = witness_report(fig1_scenario.path_set, result)
        counts = report["link_hit_counts"]
        assert list(counts.keys()) == report["implicated_links"]
        values = list(counts.values())
        assert values == sorted(values, reverse=True)
