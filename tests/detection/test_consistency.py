"""Tests for the consistency detector (eq. 23 / Remark 4)."""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.detection.consistency import ConsistencyDetector
from repro.exceptions import DetectionError


class TestConstruction:
    def test_alpha_validation(self, fig1_scenario):
        matrix = fig1_scenario.path_set.routing_matrix()
        with pytest.raises(DetectionError):
            ConsistencyDetector(matrix, alpha=-1.0)

    def test_degenerate_matrix(self):
        with pytest.raises(DetectionError):
            ConsistencyDetector(np.zeros((0, 3)))

    def test_square_matrix_flagged_blind(self):
        """Theorem 3: a square invertible R makes every attack invisible."""
        detector = ConsistencyDetector(np.eye(4), alpha=0.0)
        assert detector.structurally_blind

    def test_redundant_matrix_not_blind(self, fig1_scenario):
        detector = ConsistencyDetector(fig1_scenario.path_set.routing_matrix())
        assert not detector.structurally_blind


class TestChecks:
    def test_honest_measurements_pass(self, fig1_scenario):
        # Pinned to "ls": the numerically-zero honest residual is a
        # least-squares property, not a promise of every zoo family.
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0, estimator="ls"
        )
        result = detector.check(fig1_scenario.honest_measurements())
        assert not result.detected
        assert result.residual_l1 < 1e-8

    def test_tampered_single_path_detected(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        y = fig1_scenario.honest_measurements()
        y[0] += 1500.0
        result = detector.check(y)
        assert result.detected
        assert result.residual_l1 > 200.0
        assert result.max_path_residual() > 0

    def test_square_system_never_detects(self):
        """Any y' is consistent when R is square invertible (under LS)."""
        detector = ConsistencyDetector(np.eye(4), alpha=1e-9, estimator="ls")
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert not detector.check(rng.random(4) * 1000).detected

    def test_lp_attack_on_imperfect_cut_detected(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        assert detector.check(outcome.observed_measurements).detected

    def test_stealthy_perfect_cut_attack_missed(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [0], stealthy=True).run()
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), alpha=200.0
        )
        assert not detector.check(outcome.observed_measurements).detected

    def test_threshold_controls_verdict(self, fig1_scenario):
        y = fig1_scenario.honest_measurements()
        y[0] += 100.0
        matrix = fig1_scenario.path_set.routing_matrix()
        loose = ConsistencyDetector(matrix, alpha=1e9).check(y)
        tight = ConsistencyDetector(matrix, alpha=1.0).check(y)
        assert not loose.detected
        assert tight.detected
        assert loose.residual_l1 == pytest.approx(tight.residual_l1)

    def test_shape_validation(self, fig1_scenario):
        detector = ConsistencyDetector(fig1_scenario.path_set.routing_matrix())
        with pytest.raises(DetectionError):
            detector.check(np.ones(3))

    def test_nonfinite_rejected(self, fig1_scenario):
        detector = ConsistencyDetector(fig1_scenario.path_set.routing_matrix())
        y = fig1_scenario.honest_measurements()
        y[0] = float("inf")
        with pytest.raises(DetectionError):
            detector.check(y)

    def test_estimate_exposed(self, fig1_scenario):
        detector = ConsistencyDetector(
            fig1_scenario.path_set.routing_matrix(), estimator="ls"
        )
        result = detector.check(fig1_scenario.honest_measurements())
        assert np.allclose(result.estimate, fig1_scenario.true_metrics)
