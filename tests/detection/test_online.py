"""Streaming consistency detection over an evolving system."""

import json

import numpy as np
import pytest

from repro.detection.consistency import ConsistencyDetector
from repro.detection.online import OnlineConsistencyDetector
from repro.exceptions import DetectionError
from repro.obs import core as obs
from repro.perf.instrumentation import PerfRecorder, recording
from repro.tomography.linear_system import LinearSystem


def _incidence(num_paths: int, num_links: int, hops: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = np.zeros((num_paths, num_links))
    for i in range(num_paths):
        cols = rng.choice(num_links, size=min(hops, num_links), replace=False)
        matrix[i, cols] = 1.0
    return matrix


@pytest.fixture()
def detector():
    return OnlineConsistencyDetector(_incidence(10, 6, 3, 2), alpha=5.0)


class TestConstruction:
    def test_wraps_raw_matrix(self, detector):
        assert isinstance(detector.system, LinearSystem)
        assert detector.epoch == 0
        assert detector.checks == 0

    def test_accepts_built_system(self):
        system = LinearSystem(_incidence(8, 5, 3, 1))
        online = OnlineConsistencyDetector(system, alpha=1.0)
        assert online.system is system

    def test_negative_alpha_rejected(self):
        with pytest.raises(DetectionError, match="alpha"):
            OnlineConsistencyDetector(_incidence(4, 3, 2, 0), alpha=-1.0)

    def test_built_estimator_instance_rejected(self):
        from repro.tomography.estimator_zoo import resolve_estimator

        system = LinearSystem(_incidence(6, 4, 2, 3))
        built = resolve_estimator("ls", system=system)
        with pytest.raises(DetectionError, match="zoo name"):
            OnlineConsistencyDetector(system, alpha=1.0, estimator=built)

    def test_degenerate_matrix_rejected(self):
        with pytest.raises(DetectionError, match="degenerate"):
            OnlineConsistencyDetector(np.zeros((0, 4)), alpha=1.0)


class TestCheck:
    def test_honest_measurements_stay_quiet(self, detector):
        x = np.full(detector.system.num_links, 10.0)
        result = detector.check(detector.system.predict(x))
        assert not result.detected
        assert result.residual_l1 < 1e-8
        assert detector.checks == 1

    def test_inconsistent_measurements_detected(self, detector):
        x = np.full(detector.system.num_links, 10.0)
        observed = detector.system.predict(x)
        observed[0] += 100.0
        # A single-path spike cannot be explained by any link assignment
        # of this (rank-deficient) ensemble — the residual exceeds alpha.
        result = detector.check(observed)
        assert result.detected
        assert result.residual_l1 > detector.alpha

    def test_matches_batch_detector(self):
        matrix = _incidence(12, 7, 3, 4)
        online = OnlineConsistencyDetector(matrix, alpha=5.0)
        batch = ConsistencyDetector(matrix, alpha=5.0)
        rng = np.random.default_rng(5)
        observed = rng.uniform(0.0, 30.0, size=12)
        a = online.check(observed)
        b = batch.check(observed)
        assert a.detected == b.detected
        assert abs(a.residual_l1 - b.residual_l1) < 1e-8

    def test_wrong_shape_rejected(self, detector):
        with pytest.raises(DetectionError, match="shape"):
            detector.check(np.ones(3))

    def test_non_finite_rejected(self, detector):
        bad = np.ones(detector.system.num_paths)
        bad[0] = np.nan
        with pytest.raises(DetectionError, match="finite"):
            detector.check(bad)

    def test_emits_online_check_event(self, tmp_path, detector):
        x = np.ones(detector.system.num_links)
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            detector.check(detector.system.predict(x))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [
            r
            for r in records
            if r.get("name") == "online_check" and r.get("kind") == "event"
        ]
        assert len(events) == 1
        assert events[0]["epoch"] == 0
        assert events[0]["detected"] is False

    def test_records_perf_event(self, detector):
        x = np.ones(detector.system.num_links)
        with recording(PerfRecorder()) as recorder:
            detector.check(detector.system.predict(x))
        assert recorder.counters["online_check"] == 1


class TestAdvance:
    def test_churn_evolves_the_system(self, detector):
        before = detector.system
        row = np.zeros(before.num_links)
        row[:3] = 1.0
        evolved = detector.advance(remove_indices=[0], add_rows=[row])
        assert detector.epoch == 1
        assert evolved is detector.system
        assert evolved is not before
        assert evolved.num_paths == before.num_paths

    def test_warm_system_advances_incrementally(self, detector):
        detector.system.rank  # warm the factors so churn can patch them
        row = np.zeros(detector.system.num_links)
        row[1:4] = 1.0
        evolved = detector.advance(remove_indices=[2], add_rows=[row])
        assert evolved.evolved_incrementally

    def test_noop_epoch_still_counts(self, detector):
        before = detector.system
        detector.advance()
        assert detector.epoch == 1
        assert detector.system is before

    def test_check_matches_cold_detector_after_churn(self):
        matrix = _incidence(11, 8, 4, 6)
        online = OnlineConsistencyDetector(matrix, alpha=5.0)
        online.system.rank
        row = np.zeros(8)
        row[2:6] = 1.0
        online.advance(remove_indices=[4], add_rows=[row])
        cold = ConsistencyDetector(np.asarray(online.system.matrix), alpha=5.0)
        rng = np.random.default_rng(7)
        observed = rng.uniform(0.0, 30.0, size=11)
        a = online.check(observed)
        b = cold.check(observed)
        assert a.detected == b.detected
        assert abs(a.residual_l1 - b.residual_l1) < 1e-8

    def test_removing_every_path_rejected(self):
        online = OnlineConsistencyDetector(_incidence(2, 4, 2, 8), alpha=1.0)
        with pytest.raises(DetectionError, match="every measurement path"):
            online.advance(remove_indices=[0, 1])


class TestStructurallyBlind:
    def test_tracks_identifiability_across_churn(self):
        # 3 independent rows over 3 links: rank == num_paths => blind.
        matrix = np.eye(3)
        online = OnlineConsistencyDetector(matrix, alpha=1.0)
        assert online.structurally_blind
        # A dependent fourth row restores a consistency residual.
        online.advance(add_rows=[np.array([1.0, 1.0, 0.0])])
        assert not online.structurally_blind
