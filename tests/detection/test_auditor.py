"""Tests for the audited-tomography pipeline."""

import numpy as np

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.detection.auditor import TomographyAuditor
from repro.metrics.states import LinkState


class TestAuditor:
    def test_honest_round_trustworthy(self, fig1_scenario):
        auditor = TomographyAuditor(fig1_scenario.path_set)
        report = auditor.audit(fig1_scenario.honest_measurements())
        assert report.trustworthy
        assert report.witnesses is None
        assert report.diagnosis.abnormal == ()
        # Routine 1-20 ms delays all classify normal.
        assert all(s is LinkState.NORMAL for s in report.diagnosis.states)

    def test_imperfect_cut_attack_flagged_untrustworthy(
        self, fig1_scenario, fig1_context
    ):
        outcome = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        auditor = TomographyAuditor(fig1_scenario.path_set)
        report = auditor.audit(outcome.observed_measurements)
        assert not report.trustworthy
        assert report.witnesses is not None
        assert report.witnesses["suspicious_paths"]

    def test_stealthy_perfect_cut_attack_fools_auditor(
        self, fig1_scenario, fig1_context
    ):
        """The auditor's limits are the paper's Theorem 3 limits."""
        outcome = ChosenVictimAttack(fig1_context, [0], stealthy=True).run()
        auditor = TomographyAuditor(fig1_scenario.path_set)
        report = auditor.audit(outcome.observed_measurements)
        assert report.trustworthy  # fooled
        assert 0 in report.diagnosis.abnormal  # and blaming the scapegoat

    def test_summary_keys(self, fig1_scenario, fig1_context):
        outcome = ChosenVictimAttack(fig1_context, [9], mode="exclusive").run()
        auditor = TomographyAuditor(fig1_scenario.path_set)
        summary = auditor.audit(outcome.observed_measurements).summary()
        assert summary["trustworthy"] is False
        assert "suspicious_paths" in summary
        assert "implicated_links" in summary

    def test_custom_alpha(self, fig1_scenario):
        y = fig1_scenario.honest_measurements()
        y[0] += 50.0  # small tamper
        strict = TomographyAuditor(fig1_scenario.path_set, alpha=1.0)
        lax = TomographyAuditor(fig1_scenario.path_set, alpha=1e6)
        assert not strict.audit(y).trustworthy
        assert lax.audit(y).trustworthy

    def test_estimate_matches_detector(self, fig1_scenario):
        auditor = TomographyAuditor(fig1_scenario.path_set)
        y = fig1_scenario.honest_measurements()
        report = auditor.audit(y)
        assert np.allclose(report.diagnosis.estimate, report.detection.estimate)
