"""Tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tomography.linear_system import LinearSystem
from repro.utils.linalg import (
    column_rank,
    is_full_column_rank,
    nullspace,
    projector_onto_column_space,
)


class TestColumnRank:
    def test_identity(self):
        assert column_rank(np.eye(4)) == 4

    def test_duplicate_columns(self):
        mat = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert column_rank(mat) == 1

    def test_zero_matrix(self):
        assert column_rank(np.zeros((3, 3))) == 0

    def test_empty_matrix(self):
        assert column_rank(np.zeros((0, 3))) == 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            column_rank(np.zeros(3))


class TestFullColumnRank:
    def test_tall_full_rank(self):
        mat = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        assert is_full_column_rank(mat)

    def test_wide_matrix_never_full(self):
        assert not is_full_column_rank(np.ones((2, 3)))

    def test_no_columns_vacuously_true(self):
        assert is_full_column_rank(np.zeros((3, 0)))


class TestPinv:
    # ``least_squares_pinv`` collapsed into the shared kernel: the
    # pseudo-inverse now only exists as ``LinearSystem.estimator``.
    def test_matches_normal_equations_on_full_rank(self):
        rng = np.random.default_rng(0)
        mat = rng.random((6, 3))
        expected = np.linalg.inv(mat.T @ mat) @ mat.T
        assert np.allclose(LinearSystem(mat).estimator, expected)

    def test_pinv_recovers_exact_solution(self):
        rng = np.random.default_rng(1)
        mat = (rng.random((8, 4)) < 0.5).astype(float) + np.eye(8, 4)
        x = rng.random(4)
        assert np.allclose(LinearSystem(mat).estimator @ (mat @ x), x)


class TestNullspace:
    def test_full_rank_has_empty_nullspace(self):
        assert nullspace(np.eye(3)).shape == (3, 0)

    def test_nullspace_annihilated(self):
        mat = np.array([[1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        basis = nullspace(mat)
        assert basis.shape == (3, 1)
        assert np.allclose(mat @ basis, 0.0)

    def test_basis_is_orthonormal(self):
        mat = np.array([[1.0, 1.0, 1.0]])
        basis = nullspace(mat)
        gram = basis.T @ basis
        assert np.allclose(gram, np.eye(basis.shape[1]))


class TestProjector:
    def test_projects_onto_column_space(self):
        rng = np.random.default_rng(2)
        mat = rng.random((5, 2))
        proj = projector_onto_column_space(mat)
        assert np.allclose(proj @ mat, mat)

    def test_idempotent(self):
        rng = np.random.default_rng(3)
        mat = rng.random((6, 3))
        proj = projector_onto_column_space(mat)
        assert np.allclose(proj @ proj, proj)

    def test_symmetric(self):
        rng = np.random.default_rng(4)
        mat = rng.random((6, 3))
        proj = projector_onto_column_space(mat)
        assert np.allclose(proj, proj.T)


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
        elements=st.sampled_from([0.0, 1.0]),
    )
)
def test_rank_nullity_theorem(mat):
    """rank + nullity == number of columns, for 0/1 matrices."""
    rank = column_rank(mat)
    nullity = nullspace(mat).shape[1]
    assert rank + nullity == mat.shape[1]


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
        # 0/1 entries: the library only projects routing matrices, and
        # near-singular real matrices make pinv orthogonality claims
        # numerically vacuous.
        elements=st.sampled_from([0.0, 1.0]),
    )
)
def test_projector_fixes_column_space_residual_orthogonal(mat):
    """(I - P) y is orthogonal to the column space for any 0/1 matrix."""
    proj = projector_onto_column_space(mat)
    rng = np.random.default_rng(0)
    y = rng.random(mat.shape[0])
    residual = y - proj @ y
    assert np.allclose(mat.T @ residual, 0.0, atol=1e-7)
