"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        same = ensure_rng(gen)
        assert same is gen

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(7)).random(3)
        b = ensure_rng(7).random(3)
        assert np.array_equal(a, b)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(3, 2)
        a = children[0].random(4)
        b = children[1].random(4)
        assert not np.array_equal(a, b)

    def test_children_reproducible_from_same_seed(self):
        first = [g.random(3) for g in spawn_rngs(11, 3)]
        second = [g.random(3) for g in spawn_rngs(11, 3)]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)
