"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_finite_vector,
    check_nonnegative_vector,
    check_positive,
    check_probability,
)


class TestCheckFiniteVector:
    def test_accepts_list(self):
        out = check_finite_vector([1, 2, 3], "v")
        assert out.dtype == float
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_enforces_length(self):
        with pytest.raises(ValidationError, match="length 4"):
            check_finite_vector([1, 2, 3], "v", length=4)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_finite_vector(np.eye(2), "v")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_finite_vector([1.0, float("nan")], "v")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="finite"):
            check_finite_vector([float("inf")], "v")

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="myvec"):
            check_finite_vector(np.eye(2), "myvec")


class TestCheckNonnegativeVector:
    def test_accepts_zero(self):
        assert check_nonnegative_vector([0.0, 1.0], "v").tolist() == [0.0, 1.0]

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            check_nonnegative_vector([-0.1], "v")

    def test_atol_tolerates_round_off(self):
        out = check_nonnegative_vector([-1e-12], "v", atol=1e-9)
        assert out.shape == (1,)


class TestScalars:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_probability(bad, "p")

    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad, "x")
