"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [n for n in exceptions.__all__ if n != "ReproError"],
    )
    def test_everything_derives_from_repro_error(self, name):
        cls = getattr(exceptions, name)
        assert issubclass(cls, exceptions.ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(exceptions.ValidationError, ValueError)

    def test_routing_error_is_the_routing_family_base(self):
        """``except RoutingError`` must catch every routing failure mode."""
        for name in ("InvalidPathError", "NoPathError", "IdentifiabilityError"):
            assert issubclass(getattr(exceptions, name), exceptions.RoutingError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(exceptions.NodeNotFoundError, KeyError)
        err = exceptions.NodeNotFoundError("x")
        assert err.node == "x"
        assert "x" in str(err)

    def test_link_not_found_carries_link(self):
        err = exceptions.LinkNotFoundError(7)
        assert err.link == 7

    def test_no_path_error_carries_endpoints(self):
        err = exceptions.NoPathError("a", "b")
        assert err.source == "a"
        assert err.target == "b"

    def test_infeasible_attack_carries_solver_status(self):
        err = exceptions.InfeasibleAttackError("nope", solver_status="st")
        assert err.solver_status == "st"

    def test_one_base_catches_everything(self):
        """API contract: `except ReproError` at a boundary is sufficient."""
        with pytest.raises(exceptions.ReproError):
            raise exceptions.AttackConstraintError("x")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SingularSystemError("x")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SerializationError("x")
