"""Runtime algebra contracts: active under pytest, no-ops when disabled."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contracts import (
    check_band_bounds,
    check_constraint1,
    check_routing_matrix,
    contract,
    contracts_active,
    contracts_enabled,
)
from repro.detection.consistency import ConsistencyDetector
from repro.exceptions import ContractViolation, ReproError, ValidationError
from repro.tomography.diagnosis import diagnose
from repro.tomography.linear_system import estimator_operator


def test_contracts_enabled_under_pytest():
    """The autouse conftest fixture switches contracts on for the suite."""
    assert contracts_enabled()


class TestRoutingMatrixContract:
    def test_malformed_routing_matrix_rejected_at_entry_point(self):
        fractional = np.array([[1.0, 0.5], [0.0, 1.0]])
        with pytest.raises(ContractViolation, match="0/1"):
            estimator_operator(fractional)

    def test_detector_rejects_non_binary_matrix(self):
        with pytest.raises(ContractViolation, match="0/1"):
            ConsistencyDetector(np.array([[2.0, 0.0], [0.0, 1.0]]))

    def test_binary_matrix_accepted(self):
        matrix = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 1.0]])
        assert estimator_operator(matrix).shape == (3, 2)

    def test_contract_error_is_a_validation_error(self):
        assert issubclass(ContractViolation, ValidationError)
        assert issubclass(ContractViolation, ReproError)

    def test_checker_names_offending_entry(self):
        with pytest.raises(ContractViolation, match="estimator_operator"):
            estimator_operator(np.array([[3.0]]))

    def test_disabled_contracts_are_noops(self):
        fractional = np.array([[1.0, 0.5], [0.0, 1.0]])
        with contracts_active(False):
            # Production mode: the call proceeds (numerically fine, just
            # outside the paper's model) instead of raising.
            estimator_operator(fractional)


class TestConstraint1Contract:
    def test_off_support_manipulation_rejected(self, fig1_context):
        m = np.zeros(fig1_context.num_paths)
        off_support = next(
            i for i in range(fig1_context.num_paths) if i not in fig1_context.support
        )
        m[off_support] = 50.0
        with pytest.raises(ContractViolation, match="Constraint 1"):
            fig1_context.observed_measurements(m)

    def test_negative_manipulation_rejected(self, fig1_context):
        m = np.zeros(fig1_context.num_paths)
        m[list(fig1_context.support)[0]] = -5.0
        with pytest.raises(ContractViolation, match="negative"):
            fig1_context.observed_measurements(m)

    def test_supported_manipulation_accepted(self, fig1_context):
        m = np.zeros(fig1_context.num_paths)
        m[list(fig1_context.support)] = 100.0
        observed = fig1_context.observed_measurements(m)
        assert observed.shape == (fig1_context.num_paths,)

    def test_solver_roundoff_tolerated(self):
        m = np.array([0.0, -1e-9, 10.0])
        check_constraint1(m, support=[2], num_paths=3)


class TestBandBoundsContract:
    def test_out_of_order_bands_rejected(self):
        class Bands:
            lower, upper = 800.0, 100.0

        with pytest.raises(ContractViolation, match="out of order"):
            diagnose(np.array([1.0, 2.0]), Bands())

    def test_tuple_bands_supported(self):
        check_band_bounds((100.0, 800.0))
        with pytest.raises(ContractViolation):
            check_band_bounds((800.0, 100.0))

    def test_non_band_object_rejected(self):
        with pytest.raises(ContractViolation, match="band bounds"):
            check_band_bounds(object())


class TestContractDecorator:
    def test_param_checks_run_only_when_enabled(self):
        calls = []

        def checker(value, name):
            calls.append((name, value))

        @contract(x=checker)
        def f(x):
            return x * 2

        with contracts_active(False):
            assert f(3) == 6
        assert calls == []
        assert f(4) == 8
        assert calls == [("x", 4)]

    def test_call_checks_see_all_bound_arguments(self):
        seen = {}

        @contract(lambda arguments: seen.update(arguments))
        def g(a, b=10):
            return a + b

        assert g(1) == 11
        assert seen == {"a": 1, "b": 10}

    def test_decorator_annotates_wrapper(self):
        assert check_routing_matrix is not None
        meta = estimator_operator.__repro_contract__
        assert meta["params"] == ("routing_matrix",)
