"""Whole-program analyzer: fixture trees per pass, baseline round-trips,
cache behaviour (correctness and the >=5x warm-run speedup), and the
deterministic JSON report."""

from __future__ import annotations

import json
import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths
from repro.analysis.lint.engine import (
    AnalysisReport,
    analyze_paths,
    format_analysis,
    load_baseline,
    write_baseline,
)
from repro.cli import main
from repro.exceptions import ValidationError

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def _analyze(tree: Path, select: list[str], **kwargs) -> AnalysisReport:
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("root_package", "pkg")
    return analyze_paths([tree], select=select, **kwargs)


# ---------------------------------------------------------------------------
# RP006 — architecture layering
# ---------------------------------------------------------------------------

LAYERS_TOML = """\
root = "pkg"

[[layers]]
name = "core"
modules = [".", "core"]

[[layers]]
name = "app"
modules = ["app"]
"""


class TestLayerContract:
    def _tree(self, tmp_path, core_source: str) -> tuple[Path, Path]:
        layers = tmp_path / "layers.toml"
        layers.write_text(LAYERS_TOML)
        tree = _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/core.py": core_source,
                "pkg/app.py": """
                    from pkg.core import helper

                    def run():
                        return helper()
                    """,
            },
        )
        return tree, layers

    def test_upward_module_scope_import_is_violation(self, tmp_path):
        tree, layers = self._tree(
            tmp_path,
            """
            import pkg.app

            def helper():
                return 1
            """,
        )
        report = _analyze(tree, ["RP006"], layers_path=layers)
        assert [v.rule for v in report.violations] == ["RP006"]
        message = report.violations[0].message
        assert "higher layer" in message and "pkg.app" in message
        assert report.violations[0].path.endswith("core.py")
        assert report.exit_code == 1

    def test_lazy_upward_import_is_exempt(self, tmp_path):
        tree, layers = self._tree(
            tmp_path,
            """
            def helper():
                return 1

            def diagnostics():
                import pkg.app as app
                return app
            """,
        )
        report = _analyze(tree, ["RP006"], layers_path=layers)
        assert report.violations == []
        assert report.exit_code == 0

    def test_unassigned_module_is_violation(self, tmp_path):
        tree, layers = self._tree(tmp_path, "def helper():\n    return 1\n")
        _write_tree(tree, {"pkg/extra.py": "x = 1\n"})
        report = _analyze(tree, ["RP006"], layers_path=layers)
        assert [v.rule for v in report.violations] == ["RP006"]
        assert "not assigned to any layer" in report.violations[0].message
        assert report.violations[0].path.endswith("extra.py")

    def test_malformed_contract_is_usage_error(self, tmp_path):
        tree, _ = self._tree(tmp_path, "def helper():\n    return 1\n")
        broken = tmp_path / "broken.toml"
        broken.write_text('root = "pkg"\n')  # no [[layers]]
        with pytest.raises(ValidationError):
            _analyze(tree, ["RP006"], layers_path=broken)


# ---------------------------------------------------------------------------
# RP007 — config/env registry round-trip
# ---------------------------------------------------------------------------


class TestConfigRegistry:
    @pytest.fixture()
    def tree(self, tmp_path):
        return _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/config.py": """
                    class Knob:
                        def __init__(self, name, kind="str"):
                            self.name = name
                            self.kind = kind

                    REGISTRY = {
                        k.name: k
                        for k in (
                            Knob(name="REPRO_GOOD"),
                            Knob(name="REPRO_DEAD"),
                        )
                    }

                    def raw(name):
                        return REGISTRY[name]
                    """,
                "pkg/names.py": 'IMPORTED_NAME = "REPRO_GOOD"\n',
                "pkg/use.py": """
                    import os

                    from pkg import config
                    from pkg.names import IMPORTED_NAME

                    LOCAL_NAME = "REPRO_GOOD"

                    def read_literal():
                        return config.raw("REPRO_GOOD")

                    def read_local_constant():
                        return config.get_bool(LOCAL_NAME)

                    def read_imported_constant():
                        return config.get_str(IMPORTED_NAME)

                    def read_undeclared():
                        return config.get_float("REPRO_NOPE")

                    def read_dynamic(name):
                        return config.raw(name)

                    def bypass():
                        return os.environ.get("REPRO_SNEAKY")
                    """,
            },
        )

    def test_all_four_disciplines(self, tree):
        report = _analyze(tree, ["RP007"])
        messages = sorted(v.message for v in report.violations)
        assert len(messages) == 4
        assert any("bypasses" in m and "REPRO_SNEAKY" in m for m in messages)
        assert any("'REPRO_NOPE'" in m and "does not declare" in m for m in messages)
        assert any("dynamic knob" in m for m in messages)
        assert any("'REPRO_DEAD'" in m and "no accessor site" in m for m in messages)

    def test_constant_resolution_does_not_false_positive(self, tree):
        report = _analyze(tree, ["RP007"])
        # The literal, local-constant, and cross-module-constant reads all
        # resolve to REPRO_GOOD: declared, so never flagged.
        assert not any("'REPRO_GOOD'" in v.message for v in report.violations)

    def test_dead_entry_points_at_declaration(self, tree):
        report = _analyze(tree, ["RP007"])
        dead = [v for v in report.violations if "no accessor site" in v.message]
        assert len(dead) == 1
        assert dead[0].path.endswith("config.py")

    def test_tree_without_registry_is_silent(self, tmp_path):
        tree = _write_tree(
            tmp_path / "bare",
            {
                "pkg/__init__.py": "",
                "pkg/use.py": "import os\n\nX = os.environ.get('HOME')\n",
            },
        )
        assert _analyze(tree, ["RP007"]).violations == []


# ---------------------------------------------------------------------------
# RP008 — worker-state discipline
# ---------------------------------------------------------------------------

RACY_WORKERS = """
    from functools import partial

    from pkg.pool import run_trials

    TOTALS = {}
    COUNTS = []
    LIMIT = 3

    def bad_worker(i):
        TOTALS[i] = i
        return i

    def helper_write():
        global LIMIT
        LIMIT = 5

    def chained_worker(i):
        helper_write()
        return i

    def ok_worker(i):
        local = []
        local.append(i)
        return len(local)

    def deliberate_worker(i):
        TOTALS[i] = i  # repro: worker-state-ok (test fixture)
        return i

    def mutator(items):
        items.append(1)
        return items

    def scaled_worker(factor, i):
        COUNTS.append(i * factor)
        return i

    def run_all():
        run_trials(2, bad_worker, workers=2)
        run_trials(2, chained_worker)
        run_trials(2, ok_worker)
        run_trials(2, deliberate_worker)
        run_trials(2, mutator)
        run_trials(2, lambda i: i, workers=2)

    def run_partial():
        fn = partial(scaled_worker, 2)
        return run_trials(2, fn)

    def run_nested():
        def inner(i):
            return i
        return run_trials(2, inner, workers=2)
    """


class TestWorkerState:
    @pytest.fixture()
    def report(self, tmp_path):
        tree = _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/pool.py": """
                    def run_trials(n, trial, workers=None):
                        return [trial(i) for i in range(n)]
                    """,
                "pkg/work.py": RACY_WORKERS,
            },
        )
        return _analyze(tree, ["RP008"])

    def test_module_state_write_in_worker(self, report):
        assert any(
            "bad_worker" in v.message and "'TOTALS'" in v.message
            for v in report.violations
        )

    def test_global_decl_reachable_through_call_graph(self, report):
        assert any(
            "helper_write" in v.message and "'LIMIT'" in v.message
            for v in report.violations
        )

    def test_argument_mutation_in_root_worker(self, report):
        assert any(
            "mutator" in v.message and "'items'" in v.message
            for v in report.violations
        )

    def test_lambda_and_nested_def_with_workers(self, report):
        assert any("lambda" in v.message for v in report.violations)
        assert any(
            "closure-local function 'inner'" in v.message for v in report.violations
        )

    def test_partial_bound_worker_is_resolved(self, report):
        assert any(
            "scaled_worker" in v.message and "'COUNTS'" in v.message
            for v in report.violations
        )

    def test_allowlist_marker_silences(self, report):
        assert not any("deliberate_worker" in v.message for v in report.violations)

    def test_clean_worker_not_flagged(self, report):
        assert not any("ok_worker" in v.message for v in report.violations)
        # Exactly the six seeded defects, nothing else.
        assert len(report.violations) == 6


# ---------------------------------------------------------------------------
# RP009 — obs-schema drift
# ---------------------------------------------------------------------------


class TestObsSchema:
    @pytest.fixture()
    def report(self, tmp_path):
        tree = _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/obs/__init__.py": "",
                "pkg/obs/core.py": """
                    def emit_event(name):
                        return {"kind": "event", "name": name}

                    def emit_footer(total):
                        return {"kind": "footer", "total": total}

                    def emit_orphan():
                        return {"kind": "orphan", "x": 1}
                    """,
                "pkg/obs/summary.py": """
                    def summarize_events(records):
                        footer = None
                        out = {}
                        for record in records:
                            kind = record.get("kind")
                            if kind == "event":
                                out[record.get("name")] = record.get("t")
                                record.get("missing_field")
                            if kind == "footer":
                                footer = record
                            if kind == "ghost":
                                out["ghost"] = record.get("id")
                        out["total"] = (footer or {}).get("total")
                        return out
                    """,
            },
        )
        return _analyze(tree, ["RP009"])

    def test_consumed_kind_never_emitted(self, report):
        assert any(
            "'ghost'" in v.message and "never emits" in v.message
            for v in report.violations
        )

    def test_field_missing_at_emit_site(self, report):
        flagged = [v for v in report.violations if "missing_field" in v.message]
        assert len(flagged) == 1
        assert flagged[0].path.endswith("core.py")

    def test_emitted_kind_never_summarised(self, report):
        assert any(
            "'orphan'" in v.message and "schema drift" in v.message
            for v in report.violations
        )

    def test_envelope_fields_and_matching_reads_are_clean(self, report):
        # record.get("t") (envelope), record.get("name"), and the
        # (footer or {}).get("total") idiom must not be flagged.
        assert not any("'t'" in v.message for v in report.violations)
        assert not any("'name'" in v.message for v in report.violations)
        assert not any("total" in v.message for v in report.violations)
        assert len(report.violations) == 3


# ---------------------------------------------------------------------------
# RP010 — dead code (opt-in)
# ---------------------------------------------------------------------------


class TestDeadCode:
    @pytest.fixture()
    def tree(self, tmp_path):
        return _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "from pkg.app import call\n",
                "pkg/lib.py": """
                    __all__ = ["used_fn", "dead_fn"]

                    def _register(obj):
                        return obj

                    def used_fn():
                        return 1

                    def dead_fn():
                        return 2

                    def _private_helper():
                        return 3

                    @_register
                    class RegisteredThing:
                        pass

                    class Base:
                        pass
                    """,
                "pkg/app.py": """
                    from pkg.lib import Base, used_fn

                    class Child(Base):
                        pass

                    def call():
                        return used_fn()
                    """,
            },
        )

    def test_only_genuinely_unreferenced_symbols_flagged(self, tree):
        report = _analyze(tree, ["RP010"])
        flagged = {v.message.split("'")[1] for v in report.violations}
        # dead_fn: nothing references it.  Child: public, unreferenced.
        assert flagged == {"dead_fn", "Child"}

    def test_decorated_private_and_based_symbols_survive(self, tree):
        report = _analyze(tree, ["RP010"])
        flagged = " ".join(v.message for v in report.violations)
        assert "RegisteredThing" not in flagged  # decorated = registered
        assert "_private_helper" not in flagged  # private
        assert "'Base'" not in flagged  # used as a base class elsewhere
        assert "used_fn" not in flagged

    def test_rp010_is_opt_in(self, tree):
        report = _analyze(tree, select=None)
        assert not any(v.rule == "RP010" for v in report.violations)

    def test_rp010_needs_analyze_not_lint(self, tree):
        with pytest.raises(ValidationError, match="repro analyze"):
            lint_paths([tree], select=["RP010"])


# ---------------------------------------------------------------------------
# Baseline accept / expire
# ---------------------------------------------------------------------------


class TestBaseline:
    def _violating_tree(self, tmp_path):
        layers = tmp_path / "layers.toml"
        layers.write_text(LAYERS_TOML)
        tree = _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/core.py": "import pkg.app\n",
                "pkg/app.py": "",
            },
        )
        return tree, layers

    def test_accepted_findings_are_suppressed(self, tmp_path):
        tree, layers = self._violating_tree(tmp_path)
        report = _analyze(tree, ["RP006"], layers_path=layers)
        assert report.exit_code == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(report, baseline)
        assert len(load_baseline(baseline)) == len(report.violations)

        accepted = _analyze(tree, ["RP006"], layers_path=layers, baseline=baseline)
        assert accepted.violations == []
        assert accepted.suppressed == len(report.violations)
        assert accepted.expired == []
        assert accepted.exit_code == 0

    def test_fixed_finding_expires_but_never_fails(self, tmp_path):
        tree, layers = self._violating_tree(tmp_path)
        report = _analyze(tree, ["RP006"], layers_path=layers)
        baseline = tmp_path / "baseline.json"
        write_baseline(report, baseline)

        (tree / "pkg" / "core.py").write_text("")  # fix the violation
        after = _analyze(tree, ["RP006"], layers_path=layers, baseline=baseline)
        assert after.violations == []
        assert after.suppressed == 0
        assert len(after.expired) == 1
        assert after.exit_code == 0
        assert "prune" in format_analysis(after)

    def test_missing_or_malformed_baseline_is_usage_error(self, tmp_path):
        tree, layers = self._violating_tree(tmp_path)
        with pytest.raises(ValidationError):
            _analyze(
                tree, ["RP006"], layers_path=layers, baseline=tmp_path / "absent.json"
            )
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            _analyze(tree, ["RP006"], layers_path=layers, baseline=bad)


# ---------------------------------------------------------------------------
# Cache: correctness, speedup, and deterministic JSON
# ---------------------------------------------------------------------------


class TestCache:
    def test_warm_run_hits_for_every_file_and_agrees(self, tmp_path):
        tree = _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "import numpy as np\n\ndef f(m):\n    return np.linalg.pinv(m)\n",
                "pkg/b.py": "def g():\n    return 1\n",
            },
        )
        cache = tmp_path / "cache"
        cold = analyze_paths([tree], use_cache=True, cache_dir=cache)
        warm = analyze_paths([tree], use_cache=True, cache_dir=cache)
        assert cold.cache_misses == cold.files
        assert warm.cache_hits == warm.files == cold.files
        assert warm.cache_misses == 0
        assert [v.as_dict() for v in warm.violations] == [
            v.as_dict() for v in cold.violations
        ]

    def test_edited_file_misses_only_itself(self, tmp_path):
        tree = _write_tree(
            tmp_path / "tree",
            {"pkg/__init__.py": "", "pkg/a.py": "x = 1\n", "pkg/b.py": "y = 2\n"},
        )
        cache = tmp_path / "cache"
        analyze_paths([tree], use_cache=True, cache_dir=cache)
        (tree / "pkg" / "a.py").write_text("x = 3\n")
        edited = analyze_paths([tree], use_cache=True, cache_dir=cache)
        assert edited.cache_misses == 1
        assert edited.cache_hits == 2

    def test_warm_run_is_at_least_5x_faster_on_the_repo_tree(self, tmp_path):
        """The acceptance perf smoke: a cached re-run of ``repro analyze``
        over this repository's own src tree beats the cold run >=5x."""
        cache = tmp_path / "cache"
        t0 = time.perf_counter()  # repro: noqa RP003 (timing the cache)
        cold = analyze_paths([REPO_SRC], use_cache=True, cache_dir=cache)
        t1 = time.perf_counter()  # repro: noqa RP003 (timing the cache)
        warm = analyze_paths([REPO_SRC], use_cache=True, cache_dir=cache)
        t2 = time.perf_counter()  # repro: noqa RP003 (timing the cache)
        assert cold.cache_misses == cold.files > 0
        assert warm.cache_hits == warm.files
        cold_s, warm_s = t1 - t0, t2 - t1
        assert cold_s >= 5 * warm_s, (
            f"warm analyze not >=5x faster: cold {cold_s:.3f}s, warm {warm_s:.3f}s"
        )

    def test_json_report_is_identical_across_cache_states(self, tmp_path):
        tree = _write_tree(
            tmp_path / "tree",
            {"pkg/__init__.py": "", "pkg/a.py": "def f():\n    assert True\n"},
        )
        cache = tmp_path / "cache"
        cold = analyze_paths([tree], use_cache=True, cache_dir=cache)
        warm = analyze_paths([tree], use_cache=True, cache_dir=cache)
        assert format_analysis(cold, fmt="json") == format_analysis(warm, fmt="json")

    def test_unwritable_cache_degrades_to_analysis(self, tmp_path):
        tree = _write_tree(
            tmp_path / "tree", {"pkg/__init__.py": "", "pkg/a.py": "x = 1\n"}
        )
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        report = analyze_paths([tree], use_cache=True, cache_dir=blocked)
        assert report.files == 2
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# Extraction helpers used by the passes
# ---------------------------------------------------------------------------


class TestExtractionHelpers:
    def test_module_name_of_walks_init_chains(self, tmp_path):
        from repro.analysis.project import module_name_of

        tree = _write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "",
                "loose.py": "",
            },
        )
        assert module_name_of(tree / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
        assert module_name_of(tree / "pkg" / "__init__.py") == "pkg"
        # A file outside any package chain is a top-level module.
        assert module_name_of(tree / "loose.py") == "loose"

    def test_load_layer_contract_orders_and_validates(self, tmp_path):
        from repro.analysis.importgraph import load_layer_contract

        path = tmp_path / "layers.toml"
        path.write_text(LAYERS_TOML)
        contract = load_layer_contract(path)
        assert contract.root == "pkg"
        assert [layer.name for layer in contract.layers] == ["core", "app"]
        assert contract.layer_of("core").name == "core"
        assert contract.layer_of("app.deep.sub").name == "app"
        assert contract.layer_of("").name == "core"  # "." = the root package
        assert contract.layer_of("unmapped") is None

    def test_load_layer_contract_rejects_duplicate_prefix(self, tmp_path):
        from repro.analysis.importgraph import load_layer_contract

        path = tmp_path / "dup.toml"
        path.write_text(
            'root = "pkg"\n\n[[layers]]\nname = "a"\nmodules = ["x"]\n'
            '\n[[layers]]\nname = "b"\nmodules = ["x"]\n'
        )
        with pytest.raises(ValidationError, match="assigned twice"):
            load_layer_contract(path)

    def test_declared_knobs_parses_the_real_registry(self):
        from repro.analysis.configscan import declared_knobs
        from repro.analysis.project import extract_facts

        config_path = REPO_SRC / "repro" / "config.py"
        facts = extract_facts(config_path, rel_path="repro/config.py")
        knobs = declared_knobs(facts)
        assert "REPRO_OBS" in knobs and "REPRO_BACKEND" in knobs
        assert all(line > 0 for line in knobs.values())

    def test_obs_extraction_matches_the_real_event_log(self):
        from repro.analysis.obschema import extract_consumed, extract_emitted

        emitted = extract_emitted(REPO_SRC / "repro" / "obs" / "core.py")
        assert {"event", "counter", "gauge", "span_start", "span_end"} <= set(emitted)
        assert emitted["event"].open_ended  # event(**fields) merges kwargs
        consumed, dispatched = extract_consumed(
            REPO_SRC / "repro" / "obs" / "summary.py"
        )
        consumed_kinds = {read.kind for read in consumed}
        # Everything the summariser touches is a kind the log emits.
        assert consumed_kinds <= set(emitted) | {"header", "footer"}
        assert "span_end" in dispatched


# ---------------------------------------------------------------------------
# Severity profiles
# ---------------------------------------------------------------------------


class TestProfiles:
    @pytest.fixture()
    def seeded_tree(self, tmp_path):
        return _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/t.py": "import numpy as np\n\n"
                "def draw():\n    np.random.seed(7)\n    return 1\n",
            },
        )

    def test_tests_profile_demotes_to_advisory(self, seeded_tree):
        strict = _analyze(seeded_tree, ["RP002"], profile="src")
        relaxed = _analyze(seeded_tree, ["RP002"], profile="tests")
        assert strict.error_count == 1 and strict.exit_code == 1
        assert relaxed.error_count == 0 and relaxed.advisory_count == 1
        assert relaxed.exit_code == 0

    def test_unknown_profile_rejected(self, seeded_tree):
        with pytest.raises(ValidationError):
            _analyze(seeded_tree, ["RP002"], profile="nope")


# ---------------------------------------------------------------------------
# CLI surface + the repo-wide acceptance self-checks
# ---------------------------------------------------------------------------


class TestAnalyzeCli:
    @pytest.fixture()
    def violating_tree(self, tmp_path):
        return _write_tree(
            tmp_path / "tree",
            {
                "pkg/__init__.py": "",
                "pkg/bad.py": "import numpy as np\n\n"
                "def estimate(matrix):\n    return np.linalg.pinv(matrix)\n",
            },
        )

    def test_findings_exit_one_json_parses(self, violating_tree, capsys):
        assert (
            main(["analyze", str(violating_tree), "--no-cache", "--format", "json"])
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["violations"][0]["rule"] == "RP001"
        assert set(payload) >= {"files", "root_package", "rules", "violations"}

    def test_write_then_use_baseline(self, violating_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "analyze",
                    str(violating_tree),
                    "--no-cache",
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                ["analyze", str(violating_tree), "--no-cache", "--baseline", str(baseline)]
            )
            == 0
        )
        assert "baseline-suppressed" in capsys.readouterr().out

    def test_list_rules_shows_whole_program_and_opt_in_tags(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RP006", "RP007", "RP008", "RP009", "RP010"):
            assert rule_id in out
        assert "[whole-program]" in out
        assert "[whole-program, opt-in]" in out

    def test_bad_layer_contract_is_usage_error(self, violating_tree, tmp_path, capsys):
        broken = tmp_path / "broken.toml"
        broken.write_text("???\n")
        assert (
            main(
                [
                    "analyze",
                    str(violating_tree),
                    "--no-cache",
                    "--layers",
                    str(broken),
                    "--select",
                    "RP006",
                ]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_obs_catalog_renders_repo_schema(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    str(REPO_SRC),
                    "--no-cache",
                    "--select",
                    "RP009",
                    "--obs-catalog",
                    "-",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "## Record kinds" in out
        for kind in ("event", "counter", "gauge", "span_start", "span_end"):
            assert f"`{kind}`" in out
        assert "## Instrumentation sites" in out

    def test_repo_source_tree_analyzes_clean(self, capsys):
        """The acceptance self-check: the full analyzer (all default rules,
        RP001-RP009) exits 0 on this repository's source tree."""
        assert REPO_SRC.is_dir()
        assert main(["analyze", str(REPO_SRC), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
