"""CLI behaviour of ``repro lint``: formats, selection, exit codes, and
the self-check that the repo's own source tree lints clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture()
def violating_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(
        "import numpy as np\n"
        "\n"
        "def estimate(matrix):\n"
        "    assert matrix.ndim == 2\n"
        "    return np.linalg.pinv(matrix)\n"
    )
    return pkg


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "fine.py").write_text("x = 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_violations_exit_one_with_locations(violating_tree, capsys):
    assert main(["lint", str(violating_tree)]) == 1
    out = capsys.readouterr().out
    assert "RP001" in out and "RP004" in out
    assert "bad.py:4" in out and "bad.py:5" in out


def test_select_limits_rules(violating_tree, capsys):
    assert main(["lint", str(violating_tree), "--select", "RP004"]) == 1
    out = capsys.readouterr().out
    assert "RP004" in out
    assert "RP001" not in out


def test_select_can_make_tree_clean(violating_tree, capsys):
    assert main(["lint", str(violating_tree), "--select", "RP005"]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_format_is_machine_readable(violating_tree, capsys):
    assert main(["lint", str(violating_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["violations"]) == 2
    rules = {v["rule"] for v in payload["violations"]}
    assert rules == {"RP001", "RP004"}
    for violation in payload["violations"]:
        assert {"rule", "path", "line", "col", "message"} <= set(violation)


def test_unknown_rule_is_usage_error(violating_tree, capsys):
    assert main(["lint", str(violating_tree), "--select", "RP999"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "absent")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP001", "RP002", "RP003", "RP004", "RP005"):
        assert rule_id in out


def test_repo_source_tree_lints_clean(capsys):
    """The acceptance self-check: ``repro lint src/`` exits 0 on this repo."""
    assert REPO_SRC.is_dir()
    assert main(["lint", str(REPO_SRC)]) == 0
    assert "clean" in capsys.readouterr().out


def test_obs_package_lints_clean(capsys):
    """The observability layer is lint-clean on its own: its wall-clock
    reads are covered by the RP003 ``obs/`` exemption, and every other
    rule applies to it unreduced."""
    obs_dir = REPO_SRC / "repro" / "obs"
    assert obs_dir.is_dir()
    assert main(["lint", str(obs_dir)]) == 0
    assert "clean" in capsys.readouterr().out


def test_rp003_does_not_exempt_other_directories(tmp_path, capsys):
    """The obs/perf carve-out must not leak: a wall-clock read anywhere
    else still violates RP003."""
    pkg = tmp_path / "scenarios"
    pkg.mkdir()
    (pkg / "timing.py").write_text("import time\nnow = time.time()\n")
    assert main(["lint", str(pkg), "--select", "RP003"]) == 1
    assert "RP003" in capsys.readouterr().out
