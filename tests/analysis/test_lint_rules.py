"""Per-rule fixture tests: each rule must fire on a violating snippet and
stay silent on the clean twin."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import (
    all_rules,
    lint_file,
    lint_paths,
    noqa_rules_for_line,
    resolve_selection,
)
from repro.exceptions import ValidationError


def _lint_snippet(tmp_path, source, *, select, rel_path=None):
    path = tmp_path / (rel_path or "snippet.py")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(
        path, resolve_selection(select), rel_path=rel_path or "snippet.py"
    )


# One (violating, clean) snippet pair per rule.
RULE_FIXTURES = {
    "RP001": (
        """
        import numpy as np

        def estimate(matrix, y):
            return np.linalg.pinv(matrix) @ y
        """,
        """
        from repro.tomography.linear_system import LinearSystem

        def estimate(matrix, y):
            return LinearSystem(matrix).estimate(y)
        """,
    ),
    "RP002": (
        """
        import numpy as np

        def draw():
            np.random.seed(7)
            return np.random.rand(3)
        """,
        """
        def draw(rng):
            return rng.random(3)
        """,
    ),
    "RP003": (
        """
        import time

        def stamp():
            return time.time()
        """,
        """
        def stamp(clock):
            return clock()
        """,
    ),
    "RP004": (
        """
        def check(x):
            assert x > 0, "x must be positive"
            return x
        """,
        """
        from repro.exceptions import ValidationError

        def check(x):
            if x <= 0:
                raise ValidationError("x must be positive")
            return x
        """,
    ),
    "RP005": (
        """
        def load(path):
            try:
                return open(path).read()
            except Exception:
                return None
        """,
        """
        def load(path):
            try:
                return open(path).read()
            except OSError as exc:
                raise RuntimeError(f"cannot load {path}") from exc
        """,
    ),
}


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_violating_snippet(tmp_path, rule_id):
    violating, _ = RULE_FIXTURES[rule_id]
    found = _lint_snippet(tmp_path, violating, select=[rule_id])
    assert found, f"{rule_id} did not fire"
    assert all(v.rule == rule_id for v in found)
    assert all(v.line >= 1 for v in found)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_silent_on_clean_snippet(tmp_path, rule_id):
    _, clean = RULE_FIXTURES[rule_id]
    assert _lint_snippet(tmp_path, clean, select=[rule_id]) == []


def test_all_rules_registered():
    from repro.analysis.lint.registry import file_rules, project_rules

    assert sorted(file_rules()) == sorted(RULE_FIXTURES)
    # The whole-program rules register alongside (exercised in
    # tests/analysis/test_analyze.py).
    assert {"RP006", "RP007", "RP008", "RP009", "RP010"} <= set(project_rules())
    assert set(all_rules()) == set(file_rules()) | set(project_rules())


class TestPathExemptions:
    def test_rp001_allows_the_shared_kernel(self, tmp_path):
        source = """
        import numpy as np

        def svd(mat):
            return np.linalg.svd(mat)
        """
        assert (
            _lint_snippet(
                tmp_path, source, select=["RP001"], rel_path="utils/linalg.py"
            )
            == []
        )
        assert _lint_snippet(
            tmp_path, source, select=["RP001"], rel_path="detection/robust.py"
        )

    def test_rp002_allows_the_rng_module(self, tmp_path):
        source = """
        import numpy as np

        def ensure(seed):
            return np.random.seed(seed)
        """
        assert (
            _lint_snippet(tmp_path, source, select=["RP002"], rel_path="utils/rng.py")
            == []
        )

    def test_rp003_allows_perf(self, tmp_path):
        source = """
        import time

        def tick():
            return time.perf_counter()
        """
        assert (
            _lint_snippet(tmp_path, source, select=["RP003"], rel_path="perf/bench.py")
            == []
        )
        assert _lint_snippet(
            tmp_path, source, select=["RP003"], rel_path="attacks/lp.py"
        )

    def test_rp004_skips_test_modules(self, tmp_path):
        source = """
        def test_thing():
            assert 1 + 1 == 2
        """
        assert (
            _lint_snippet(
                tmp_path, source, select=["RP004"], rel_path="tests/test_thing.py"
            )
            == []
        )


class TestNoqa:
    def test_blanket_noqa_suppresses_all(self, tmp_path):
        source = """
        import numpy as np

        def estimate(matrix):
            return np.linalg.pinv(matrix)  # repro: noqa
        """
        assert _lint_snippet(tmp_path, source, select=["RP001"]) == []

    def test_targeted_noqa_suppresses_only_named_rule(self, tmp_path):
        source = """
        import numpy as np

        def bad(matrix):
            assert matrix.ndim == 2
            return np.linalg.pinv(matrix)  # repro: noqa RP004
        """
        found = _lint_snippet(tmp_path, source, select=["RP001", "RP004"])
        # The bare assert (no noqa) keeps RP004; the pinv line suppresses
        # RP004 only, so its RP001 survives.
        assert [v.rule for v in found] == ["RP004", "RP001"]

    def test_noqa_spec_parsing(self):
        assert noqa_rules_for_line("x = 1") is None
        assert noqa_rules_for_line("x = 1  # repro: noqa") == frozenset()
        assert noqa_rules_for_line("x = 1  # repro: noqa RP001,RP005") == frozenset(
            {"RP001", "RP005"}
        )


class TestEngine:
    def test_syntax_error_reported_as_rp000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        found = lint_paths([bad])
        assert [v.rule for v in found] == ["RP000"]

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            lint_paths([tmp_path / "nope"])

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValidationError):
            resolve_selection(["RP999"])

    def test_directory_walk_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("import random\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_paths([tmp_path]) == []
