"""Tests for run manifests and the canonical config digest."""

import json
import math

import numpy as np

from repro.obs import RunManifest, config_digest
from repro.obs.manifest import _binary_matrix_digest, matrix_digest


class TestMatrixDigest:
    def _generic(self, matrix) -> str:
        rows = matrix.tolist()
        return config_digest(
            {"shape": [len(rows), len(rows[0]) if rows else 0], "data": rows}
        )

    def test_fast_path_byte_identical_to_generic(self):
        rng = np.random.default_rng(0)
        for shape in [(1, 1), (3, 4), (7, 1), (1, 9), (40, 60)]:
            matrix = (rng.random(shape) < 0.3).astype(float)
            assert _binary_matrix_digest(matrix) == self._generic(matrix)
            assert matrix_digest(matrix) == self._generic(matrix)

    def test_non_binary_and_empty_fall_back(self):
        for matrix in (
            np.array([[0.5, 1.0]]),
            np.array([[0.0, -0.0], [1.0, 0.0]]),  # canonical JSON keeps -0.0
            np.zeros((0, 3)),
            np.zeros((2, 0)),
            np.eye(3, dtype=np.float32),
        ):
            assert _binary_matrix_digest(matrix) is None
            assert matrix_digest(matrix) == self._generic(matrix)

    def test_container_independence(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert matrix_digest(matrix) == matrix_digest(matrix.tolist())


class TestConfigDigest:
    def test_deterministic_under_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_none_and_empty_share_digest(self):
        assert config_digest(None) == config_digest({})

    def test_numpy_scalars_normalised(self):
        assert config_digest({"seed": np.int64(7)}) == config_digest({"seed": 7})

    def test_nonfinite_values_digestable(self):
        digest = config_digest({"cap": math.inf, "margin": math.nan})
        assert len(digest) == 64
        assert digest == config_digest({"cap": math.inf, "margin": math.nan})

    def test_different_configs_differ(self):
        assert config_digest({"seed": 1}) != config_digest({"seed": 2})


class TestRunManifest:
    def test_write_and_reload(self, tmp_path):
        manifest = RunManifest(command="run", seed=7, config={"trials": 10})
        out = manifest.write(tmp_path / "run.manifest.json")
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-run-manifest"
        assert doc["command"] == "run"
        assert doc["seed"] == 7
        assert doc["config"] == {"trials": 10}
        assert doc["config_digest"] == config_digest({"trials": 10})
        assert doc["wall_s"] >= 0.0
        assert doc["cpu_s"] >= 0.0

    def test_determinism_under_fixed_seed(self, tmp_path):
        """Two runs of the same command+seed agree on every provenance
        field (only the timing/creation stamps may differ)."""
        volatile = {"created_unix", "wall_s", "cpu_s"}
        docs = []
        for name in ("a", "b"):
            manifest = RunManifest(command="bench", seed=2017, config={"repeat": 3})
            doc = json.loads(manifest.write(tmp_path / f"{name}.json").read_text())
            docs.append({k: v for k, v in doc.items() if k not in volatile})
        assert docs[0] == docs[1]

    def test_attach_scenario_summary(self, tmp_path, fig1_scenario):
        manifest = RunManifest(command="run")
        manifest.attach_scenario(fig1_scenario)
        doc = json.loads(manifest.write(tmp_path / "m.json").read_text())
        assert "topology" in doc
        assert doc["topology"] == json.loads(
            json.dumps(doc["topology"])
        )  # JSON-clean

    def test_nonfinite_config_written_as_strict_json(self, tmp_path):
        manifest = RunManifest(command="run", config={"cap": math.inf})
        out = manifest.write(tmp_path / "m.json")

        def reject_constant(name):
            raise AssertionError(f"non-standard token {name!r} in manifest")

        doc = json.loads(out.read_text(), parse_constant=reject_constant)
        assert doc["config"]["cap"] == "Infinity"
