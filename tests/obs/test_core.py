"""Tests for the JSONL event log and its activation hooks."""

import json
import math

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.obs import (
    SCHEMA_VERSION,
    EventLog,
    read_events,
    summarize_events,
    summarize_run,
)
from repro.obs import core as obs


class TestDisabledPath:
    """With no active log, every hook must be a no-op touching nothing."""

    def test_hooks_are_noops(self, tmp_path):
        assert obs.active_log() is None
        assert not obs.is_enabled()
        obs.event("x", a=1)
        obs.counter("x", 5)
        obs.gauge("x", 1.0)
        with obs.span("x") as log:
            assert log is None
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere

    def test_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not obs.env_enabled()
        with obs.enabled_from_env() as log:
            assert log is None

    def test_env_falsy_values(self, monkeypatch):
        for value in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_OBS", value)
            assert not obs.env_enabled()
        for value in ("1", "true", "YES", "On"):
            monkeypatch.setenv("REPRO_OBS", value)
            assert obs.env_enabled()


class TestEventLog:
    def test_header_and_footer_envelope(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path, run_id="my-run")
        log.event("hello", value=1)
        log.close()
        records = read_events(path)
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["run"] == "my-run"
        assert records[-1]["kind"] == "footer"
        assert records[-1]["wall_s"] >= 0.0

    def test_every_line_is_strict_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.enabled(path) as log:
            log.event("weird", inf=math.inf, ninf=-math.inf, nan=math.nan)
            log.gauge("g", np.float64(2.5))
            log.event("np", n=np.int64(3), arr=np.asarray([1.0, math.inf]))

        def reject_constant(name):
            raise AssertionError(f"non-standard token {name!r} in log line")

        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=reject_constant)
        records = read_events(path)
        weird = next(r for r in records if r.get("name") == "weird")
        assert weird["inf"] == "Infinity"
        assert weird["ninf"] == "-Infinity"
        assert weird["nan"] == "NaN"
        np_event = next(r for r in records if r.get("name") == "np")
        assert np_event["n"] == 3
        assert np_event["arr"] == [1.0, "Infinity"]

    def test_nested_spans_parent_and_depth(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.enabled(path) as log:
            with log.span("outer"):
                with log.span("inner"):
                    log.event("leaf")
        records = read_events(path)
        starts = {r["name"]: r for r in records if r["kind"] == "span_start"}
        assert starts["outer"]["parent"] is None
        assert starts["outer"]["depth"] == 0
        assert starts["inner"]["parent"] == starts["outer"]["id"]
        assert starts["inner"]["depth"] == 1
        leaf = next(r for r in records if r.get("name") == "leaf")
        assert leaf["span"] == starts["inner"]["id"]
        ends = [r for r in records if r["kind"] == "span_end"]
        assert len(ends) == 2
        assert all(r["dur_s"] >= 0.0 for r in ends)

    def test_counters_keep_running_totals(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.enabled(path) as log:
            log.counter("svd")
            log.counter("svd", 2)
            log.counter("lp", 4)
        records = read_events(path)
        footer = records[-1]
        assert footer["counters"] == {"svd": 3, "lp": 4}
        increments = [r for r in records if r["kind"] == "counter" and r["name"] == "svd"]
        assert [r["total"] for r in increments] == [1, 3]

    def test_enabled_activates_and_restores(self, tmp_path):
        assert obs.active_log() is None
        with obs.enabled(tmp_path / "run.jsonl") as log:
            assert obs.active_log() is log
            assert obs.is_enabled()
            obs.event("via-hook")
        assert obs.active_log() is None
        names = [r.get("name") for r in read_events(tmp_path / "run.jsonl")]
        assert "via-hook" in names

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path)
        log.close()
        log.close()
        log.event("after")  # silently dropped, never corrupts the file
        records = read_events(path)
        assert [r["kind"] for r in records] == ["header", "footer"]


class TestSummaries:
    def test_round_trip_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.enabled(path, run_id="sum") as log:
            with log.span("work"):
                log.counter("steps", 3)
                log.gauge("temp", 1.5)
                log.gauge("temp", 0.5)
                log.event("tick")
                log.event("tick")
        summary = summarize_run(path)
        assert summary["run"] == "sum"
        assert summary["complete"]
        assert summary["open_spans"] == 0
        assert summary["spans"]["work"]["calls"] == 1
        assert summary["counters"] == {"steps": 3}
        assert summary["gauges"]["temp"]["samples"] == 2
        assert summary["gauges"]["temp"]["min"] == 0.5
        assert summary["gauges"]["temp"]["max"] == 1.5
        assert summary["events"]["tick"] == 2

    def test_truncated_log_counts_open_spans(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = EventLog(path)
        log._emit({"kind": "span_start", "name": "crashed", "id": 1, "parent": None, "depth": 0})
        log._file.close()  # simulate a killed run: no span_end, no footer
        log._closed = True
        summary = summarize_events(read_events(path))
        assert not summary["complete"]
        assert summary["open_spans"] == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            read_events(tmp_path / "nope.jsonl")

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            pass
        path.write_text(path.read_text() + "{broken\n")
        with pytest.raises(SerializationError, match="invalid JSON"):
            read_events(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "event", "name": "x"}\n')
        with pytest.raises(SerializationError, match="header"):
            read_events(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "header", "schema": 99}\n')
        with pytest.raises(SerializationError, match="schema"):
            read_events(path)


class TestEnvActivation:
    def test_env_path_respected(self, tmp_path, monkeypatch):
        target = tmp_path / "explicit.jsonl"
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_PATH", str(target))
        with obs.enabled_from_env() as log:
            assert log is not None
            assert log.path == target
            obs.event("env-run")
        assert target.exists()

    def test_outer_activation_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_PATH", str(tmp_path / "inner.jsonl"))
        with obs.enabled(tmp_path / "outer.jsonl") as outer:
            with obs.enabled_from_env() as inner:
                assert inner is None  # the outer log keeps ownership
                assert obs.active_log() is outer
        assert not (tmp_path / "inner.jsonl").exists()

    def test_default_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_PATH", raising=False)
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "logs"))
        path = obs.default_run_path()
        assert path.parent == tmp_path / "logs"
        assert path.suffix == ".jsonl"


class TestPerfShim:
    """perf.stage / perf.record_event must forward into the active log."""

    def test_stage_and_events_land_in_obs_log(self, tmp_path):
        from repro.perf import instrumentation as perf

        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            with perf.stage("shimmed"):
                perf.record_event("svd", 2)
        summary = summarize_run(path)
        assert summary["spans"]["shimmed"]["calls"] == 1
        assert summary["counters"]["svd"] == 2

    def test_shim_still_noop_when_everything_off(self):
        from repro.perf import instrumentation as perf

        with perf.stage("nothing") as recorder:
            assert recorder is None
        perf.record_event("nothing")  # must not raise

    def test_recorder_and_log_both_fed(self, tmp_path):
        from repro.perf.instrumentation import PerfRecorder, recording, stage

        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            with recording(PerfRecorder()) as recorder:
                with stage("both"):
                    pass
        assert recorder.stage_calls["both"] == 1
        assert summarize_run(path)["spans"]["both"]["calls"] == 1


class TestInstrumentedLibrary:
    """Hot paths emit events when a log is active — and only then."""

    def test_linear_system_factorization_event(self, tmp_path):
        from repro.tomography.linear_system import LinearSystem

        matrix = np.asarray([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            LinearSystem(matrix).rank
        events = [r for r in read_events(path) if r.get("name") == "linear_system_factorize"]
        assert len(events) == 1
        assert events[0]["paths"] == 2
        assert events[0]["links"] == 3
        assert events[0]["rank"] == 2

    def test_lp_solve_event(self, tmp_path, fig1_scenario):
        from repro.attacks.lp import BandConstraints, solve_manipulation_lp
        from repro.tomography.linear_system import estimator_operator

        operator = estimator_operator(fig1_scenario.path_set.routing_matrix())
        bands = BandConstraints.unbounded(10)
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            solve_manipulation_lp(
                operator, fig1_scenario.true_metrics, [0, 1], 23, bands, cap=100.0
            )
        events = [
            r
            for r in read_events(path)
            if r["kind"] == "event" and r.get("name") == "lp_solve"
        ]
        assert events and events[0]["success"]
        assert events[0]["variables"] == 2  # one per supported path

    def test_unbounded_resolve_event(self, tmp_path, fig1_scenario):
        from repro.attacks.lp import BandConstraints, solve_manipulation_lp
        from repro.tomography.linear_system import estimator_operator

        operator = estimator_operator(fig1_scenario.path_set.routing_matrix())
        bands = BandConstraints.unbounded(10)
        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            solution = solve_manipulation_lp(
                operator, fig1_scenario.true_metrics, [0, 1], 23, bands, cap=None
            )
        assert solution.unbounded
        names = [r.get("name") for r in read_events(path)]
        assert "lp_unbounded_resolve" in names

    def test_run_trials_chunk_events(self, tmp_path):
        from repro.scenarios.montecarlo import run_trials

        from tests.scenarios.test_montecarlo import _stochastic_trial

        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            run_trials(8, _stochastic_trial, seed=3, workers=2, chunk_size=2)
        records = read_events(path)
        run_events = [r for r in records if r.get("name") == "mc_run"]
        assert run_events[0]["workers"] == 2
        assert run_events[0]["chunks"] == 4
        chunk_events = [r for r in records if r.get("name") == "mc_chunk"]
        assert [c["index"] for c in chunk_events] == [0, 1, 2, 3]
        assert chunk_events[-1]["collected"] == 8
        done = [r for r in records if r.get("name") == "mc_done"]
        assert done[0]["trials"] == 8

    def test_observability_does_not_change_results(self, tmp_path):
        """Identical trial outcomes with and without an active log."""
        from repro.scenarios.montecarlo import run_trials

        from tests.scenarios.test_montecarlo import _stochastic_trial

        plain = run_trials(12, _stochastic_trial, seed=11, workers=2)
        with obs.enabled(tmp_path / "run.jsonl"):
            observed = run_trials(12, _stochastic_trial, seed=11, workers=2)
        assert plain == observed


def _noisy_trial(rng):
    """Module-level trial that tries to report into the event log."""
    obs.event("worker_probe", pid=True)
    with obs.span("worker_span"):
        return {"v": float(rng.random())}


class TestForkedWorkers:
    """Pool workers must never write into the parent's inherited log."""

    def test_detach_is_noop_in_owner_process(self, tmp_path):
        with obs.enabled(tmp_path / "run.jsonl") as log:
            obs.detach_inherited_log()
            assert obs.active_log() is log
        assert obs.active_log() is None

    def test_detach_drops_log_from_other_pid(self, tmp_path, monkeypatch):
        with obs.enabled(tmp_path / "run.jsonl") as log:
            monkeypatch.setattr(log, "_pid", log._pid + 1)  # simulate fork
            obs.detach_inherited_log()
            assert obs.active_log() is None
        # the owner's close still wrote a well-formed footer
        assert read_events(tmp_path / "run.jsonl")[-1]["kind"] == "footer"

    def test_worker_events_stay_out_of_parent_log(self, tmp_path):
        """Trials emitting events in a forked pool leave no trace: the
        inherited log is detached, and the parent's file stays a single
        well-formed record stream (no replayed buffers, no interleaving)."""
        from repro.scenarios.montecarlo import run_trials

        path = tmp_path / "run.jsonl"
        with obs.enabled(path):
            results = run_trials(6, _noisy_trial, seed=5, workers=2)
        assert len(results) == 6
        records = read_events(path)
        kinds = [r["kind"] for r in records]
        assert kinds.count("header") == 1 and kinds.count("footer") == 1
        assert kinds.count("span_start") == kinds.count("span_end")
        names = {r.get("name") for r in records}
        assert "worker_probe" not in names and "worker_span" not in names
