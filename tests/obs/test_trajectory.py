"""Tests for the benchmark trajectory file (append-only semantics)."""

import json

import pytest

from repro.perf.bench import SCHEMA_VERSION, append_trajectory


def _fake_benchmarks(wall: float) -> dict:
    return {
        "fig5_max_damage": {
            "wall_s": wall,
            "speedup": {"svd": 2.0, "lp_assembly": 3.0, "combined": 2.5},
            "stages": {"ignored": {"seconds": 1.0, "calls": 1}},
        }
    }


class TestAppendTrajectory:
    def test_creates_fresh_file(self, tmp_path):
        out = append_trajectory(_fake_benchmarks(0.5), tmp_path / "BENCH_trajectory.json")
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert len(doc["runs"]) == 1
        point = doc["runs"][0]["benchmarks"]["fig5_max_damage"]
        assert point["wall_s"] == 0.5
        assert point["speedup"]["combined"] == 2.5
        assert "stages" not in point  # trajectory keeps the compact summary only

    def test_appends_not_overwrites(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        for wall in (0.5, 0.6, 0.7):
            append_trajectory(_fake_benchmarks(wall), path)
        doc = json.loads(path.read_text())
        assert [
            r["benchmarks"]["fig5_max_damage"]["wall_s"] for r in doc["runs"]
        ] == [0.5, 0.6, 0.7]
        assert all("created_unix" in r for r in doc["runs"])

    def test_corrupt_existing_file_not_clobbered(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            append_trajectory(_fake_benchmarks(0.5), path)
        assert path.read_text() == "{not json"  # original preserved

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text('{"schema_version": 1}')
        with pytest.raises(ValueError, match="runs"):
            append_trajectory(_fake_benchmarks(0.5), path)
