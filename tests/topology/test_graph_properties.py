"""Property-based tests for the Topology type."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.analysis import connected_components, is_connected
from repro.topology.graph import Topology
from repro.topology.serialization import topology_from_json, topology_to_json


@st.composite
def random_edge_sets(draw):
    """A random simple-graph edge set over integer nodes."""
    num_nodes = draw(st.integers(2, 12))
    pairs = [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, min_size=1, max_size=len(pairs))
    )
    return num_nodes, chosen


def build(num_nodes: int, edges) -> Topology:
    topo = Topology()
    topo.add_nodes(range(num_nodes))
    topo.add_links(edges)
    return topo


@settings(max_examples=60, deadline=None)
@given(random_edge_sets())
def test_handshake_lemma(data):
    """Sum of degrees equals twice the number of links."""
    num_nodes, edges = data
    topo = build(num_nodes, edges)
    assert sum(topo.degree(n) for n in topo.nodes()) == 2 * topo.num_links


@settings(max_examples=60, deadline=None)
@given(random_edge_sets())
def test_link_indices_dense_and_stable(data):
    num_nodes, edges = data
    topo = build(num_nodes, edges)
    assert [link.index for link in topo.links()] == list(range(topo.num_links))
    for link in topo.links():
        assert topo.link_between(link.u, link.v).index == link.index


@settings(max_examples=60, deadline=None)
@given(random_edge_sets())
def test_components_partition_nodes(data):
    num_nodes, edges = data
    topo = build(num_nodes, edges)
    comps = connected_components(topo)
    seen = [node for comp in comps for node in comp]
    assert sorted(seen, key=repr) == sorted(topo.nodes(), key=repr)
    assert is_connected(topo) == (len(comps) == 1)


@settings(max_examples=60, deadline=None)
@given(random_edge_sets())
def test_json_round_trip_preserves_structure(data):
    num_nodes, edges = data
    topo = build(num_nodes, edges)
    back = topology_from_json(topology_to_json(topo))
    assert back.nodes() == topo.nodes()
    assert [l.endpoints for l in back.links()] == [l.endpoints for l in topo.links()]


@settings(max_examples=60, deadline=None)
@given(random_edge_sets())
def test_incident_links_consistent_with_links(data):
    num_nodes, edges = data
    topo = build(num_nodes, edges)
    for node in topo.nodes():
        for link in topo.incident_links(node):
            assert node in link.endpoints
    total_incidences = sum(len(topo.incident_links(n)) for n in topo.nodes())
    assert total_incidences == 2 * topo.num_links
