"""Tests for deterministic topology generators."""

import pytest

from repro.exceptions import ValidationError
from repro.topology.analysis import is_connected
from repro.topology.generators.simple import (
    clique_topology,
    grid_topology,
    ladder_topology,
    paper_example_network,
    path_topology,
    ring_topology,
    star_topology,
    tree_topology,
)


class TestPaperExampleNetwork:
    def test_dimensions_match_fig1(self):
        topo = paper_example_network()
        assert topo.num_nodes == 7
        assert topo.num_links == 10

    def test_monitors_and_internal_nodes_present(self):
        topo = paper_example_network()
        for node in ["M1", "M2", "M3", "A", "B", "C", "D"]:
            assert topo.has_node(node)

    def test_link_1_is_m1_a(self):
        topo = paper_example_network()
        assert topo.link(0).key() == frozenset(("M1", "A"))

    def test_attackers_control_paper_links_2_to_8(self):
        """B and C are incident exactly to paper links 2-8 (indices 1-7)."""
        topo = paper_example_network()
        controlled = topo.links_incident_to_nodes(["B", "C"])
        assert controlled == {1, 2, 3, 4, 5, 6, 7}

    def test_a_is_cut_off_by_attackers(self):
        """Node A reaches the network only through B and C (besides M1)."""
        topo = paper_example_network()
        assert set(topo.neighbors("A")) == {"M1", "B", "C"}

    def test_path_m3_d_m2_avoids_attackers(self):
        """Paper links 9, 10 form the attacker-free path M3-D-M2."""
        topo = paper_example_network()
        assert topo.link(8).key() == frozenset(("M3", "D"))
        assert topo.link(9).key() == frozenset(("D", "M2"))

    def test_paper_path5_chain(self):
        """Links 8, 7, 5, 3 (indices 7, 6, 4, 2) chain M2-C-D-B-M3."""
        topo = paper_example_network()
        assert topo.link(7).key() == frozenset(("C", "M2"))
        assert topo.link(6).key() == frozenset(("C", "D"))
        assert topo.link(4).key() == frozenset(("B", "D"))
        assert topo.link(2).key() == frozenset(("B", "M3"))

    def test_connected(self):
        assert is_connected(paper_example_network())


class TestFamilies:
    def test_path(self):
        topo = path_topology(5)
        assert (topo.num_nodes, topo.num_links) == (5, 4)

    def test_path_too_small(self):
        with pytest.raises(ValidationError):
            path_topology(1)

    def test_ring(self):
        topo = ring_topology(6)
        assert (topo.num_nodes, topo.num_links) == (6, 6)
        assert all(topo.degree(n) == 2 for n in topo.nodes())

    def test_ring_minimum(self):
        with pytest.raises(ValidationError):
            ring_topology(2)

    def test_star(self):
        topo = star_topology(5)
        assert topo.degree(0) == 5
        assert topo.num_links == 5

    def test_grid_counts(self):
        topo = grid_topology(3, 4)
        assert topo.num_nodes == 12
        assert topo.num_links == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_single_cell_invalid(self):
        with pytest.raises(ValidationError):
            grid_topology(1, 1)

    def test_tree_counts(self):
        topo = tree_topology(depth=2, branching=3)
        assert topo.num_nodes == 1 + 3 + 9
        assert topo.num_links == topo.num_nodes - 1
        assert is_connected(topo)

    def test_clique(self):
        topo = clique_topology(5)
        assert topo.num_links == 10
        assert all(topo.degree(n) == 4 for n in topo.nodes())

    def test_ladder(self):
        topo = ladder_topology(3)
        assert topo.num_nodes == 6
        assert topo.num_links == 3 + 2 * 2  # rungs + two rails
        assert is_connected(topo)

    @pytest.mark.parametrize(
        "factory",
        [path_topology, ring_topology, clique_topology],
    )
    def test_all_connected(self, factory):
        assert is_connected(factory(5))
