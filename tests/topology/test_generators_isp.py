"""Tests for the ISP topology substrate."""

import pytest

from repro.exceptions import SerializationError, ValidationError
from repro.topology.analysis import degree_histogram, is_connected
from repro.topology.generators.isp import (
    barabasi_albert_topology,
    load_rocketfuel_edges,
    synthetic_rocketfuel,
)


class TestSyntheticRocketfuel:
    def test_default_scale_comparable_to_as1221(self):
        topo = synthetic_rocketfuel()
        assert 80 <= topo.num_nodes <= 200
        assert topo.num_links >= topo.num_nodes  # meshier than a tree

    def test_deterministic_for_seed(self):
        a = synthetic_rocketfuel(seed=5)
        b = synthetic_rocketfuel(seed=5)
        assert a.nodes() == b.nodes()
        assert [l.key() for l in a.links()] == [l.key() for l in b.links()]

    def test_different_seeds_differ(self):
        a = synthetic_rocketfuel(seed=1)
        b = synthetic_rocketfuel(seed=2)
        assert (a.num_links != b.num_links) or (
            [l.key() for l in a.links()] != [l.key() for l in b.links()]
        )

    def test_connected(self):
        assert is_connected(synthetic_rocketfuel(seed=3))

    def test_hierarchy_labels(self):
        topo = synthetic_rocketfuel(seed=0)
        assert any(str(n).startswith("bb") for n in topo.nodes())
        assert any(str(n).startswith("agg") for n in topo.nodes())
        assert any(str(n).startswith("acc") for n in topo.nodes())

    def test_heavy_tail_backbone_degree(self):
        """Backbone routers have much higher degree than access routers."""
        topo = synthetic_rocketfuel(seed=0)
        bb_degrees = [topo.degree(n) for n in topo.nodes() if str(n).startswith("bb")]
        acc_degrees = [topo.degree(n) for n in topo.nodes() if str(n).startswith("acc")]
        assert min(bb_degrees) > max(acc_degrees) - 1
        assert max(bb_degrees) >= 2 * max(acc_degrees)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            synthetic_rocketfuel(backbone_nodes=2)
        with pytest.raises(ValidationError):
            synthetic_rocketfuel(access_per_pop=(3, 1))
        with pytest.raises(ValidationError):
            synthetic_rocketfuel(pops_per_backbone=-1)

    def test_no_pops(self):
        topo = synthetic_rocketfuel(backbone_nodes=5, pops_per_backbone=0, seed=0)
        assert all(str(n).startswith("bb") for n in topo.nodes())


class TestBarabasiAlbert:
    def test_counts(self):
        topo = barabasi_albert_topology(30, attach=2, seed=0)
        assert topo.num_nodes == 30
        # clique(3) has 3 links, then 27 nodes x 2 links each
        assert topo.num_links == 3 + 27 * 2

    def test_connected(self):
        assert is_connected(barabasi_albert_topology(50, attach=2, seed=1))

    def test_heavy_tail(self):
        topo = barabasi_albert_topology(200, attach=2, seed=2)
        hist = degree_histogram(topo)
        assert max(hist) >= 10  # some hub exists

    def test_validation(self):
        with pytest.raises(ValidationError):
            barabasi_albert_topology(3, attach=3)
        with pytest.raises(ValidationError):
            barabasi_albert_topology(10, attach=0)


class TestRocketfuelParser:
    def test_parses_edge_list(self, tmp_path):
        path = tmp_path / "weights.intra"
        path.write_text("# comment\n1 2 10.0\n2 3\n\n3 1 4\n")
        topo = load_rocketfuel_edges(path)
        assert topo.num_nodes == 3
        assert topo.num_links == 3

    def test_skips_duplicates_and_self_loops(self, tmp_path):
        path = tmp_path / "dup.intra"
        path.write_text("1 2\n2 1\n1 1\n")
        topo = load_rocketfuel_edges(path)
        assert topo.num_links == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.intra"
        path.write_text("justonetoken\n")
        with pytest.raises(SerializationError, match="bad.intra:1"):
            load_rocketfuel_edges(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_rocketfuel_edges(tmp_path / "nope.intra")

    def test_custom_name(self, tmp_path):
        path = tmp_path / "x.intra"
        path.write_text("1 2\n")
        assert load_rocketfuel_edges(path, name="AS9999").name == "AS9999"
