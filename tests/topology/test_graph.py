"""Tests for the Topology graph type."""

import pytest

from repro.exceptions import LinkNotFoundError, NodeNotFoundError, TopologyError
from repro.topology.graph import Link, Topology


class TestLink:
    def test_endpoints_and_other(self):
        link = Link(index=0, u="a", v="b")
        assert link.endpoints == ("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Link(index=0, u="a", v="b").other("c")

    def test_key_is_order_independent(self):
        assert Link(0, "a", "b").key() == Link(5, "b", "a").key()


class TestConstruction:
    def test_add_link_creates_nodes(self):
        topo = Topology()
        topo.add_link("x", "y")
        assert topo.has_node("x") and topo.has_node("y")
        assert topo.num_nodes == 2
        assert topo.num_links == 1

    def test_link_indices_are_sequential(self):
        topo = Topology()
        links = topo.add_links([(0, 1), (1, 2), (2, 3)])
        assert [link.index for link in links] == [0, 1, 2]

    def test_add_node_idempotent(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("a")
        assert topo.num_nodes == 1

    def test_self_loop_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError, match="self-loop"):
            topo.add_link("a", "a")

    def test_duplicate_link_rejected_either_direction(self):
        topo = Topology()
        topo.add_link("a", "b")
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_link("b", "a")

    def test_none_node_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_node(None)


class TestQueries:
    @pytest.fixture()
    def triangle(self):
        topo = Topology(name="tri")
        topo.add_links([("a", "b"), ("b", "c"), ("c", "a")])
        return topo

    def test_nodes_in_insertion_order(self, triangle):
        assert triangle.nodes() == ["a", "b", "c"]

    def test_link_lookup_by_index(self, triangle):
        assert triangle.link(1).endpoints == ("b", "c")

    def test_link_lookup_out_of_range(self, triangle):
        with pytest.raises(LinkNotFoundError):
            triangle.link(3)

    def test_link_between_order_independent(self, triangle):
        assert triangle.link_between("c", "b").index == 1

    def test_link_between_missing(self, triangle):
        triangle.add_node("d")
        with pytest.raises(LinkNotFoundError):
            triangle.link_between("a", "d")

    def test_neighbors(self, triangle):
        assert set(triangle.neighbors("a")) == {"b", "c"}

    def test_neighbors_unknown_node(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.neighbors("zz")

    def test_degree(self, triangle):
        assert triangle.degree("b") == 2

    def test_incident_links(self, triangle):
        indices = [link.index for link in triangle.incident_links("b")]
        assert indices == [0, 1]

    def test_links_incident_to_nodes(self, triangle):
        assert triangle.links_incident_to_nodes(["a"]) == {0, 2}
        assert triangle.links_incident_to_nodes(["a", "b"]) == {0, 1, 2}

    def test_contains_and_iter(self, triangle):
        assert "a" in triangle
        assert list(triangle) == ["a", "b", "c"]

    def test_node_index(self, triangle):
        assert triangle.node_index("c") == 2
        with pytest.raises(NodeNotFoundError):
            triangle.node_index("nope")

    def test_adjacency_returns_fresh_lists(self, triangle):
        adj = triangle.adjacency()
        adj["a"].append("zzz")
        assert "zzz" not in triangle.neighbors("a")


class TestDerived:
    def test_copy_preserves_indices(self):
        topo = Topology(name="orig")
        topo.add_links([("a", "b"), ("b", "c")])
        clone = topo.copy()
        assert clone.nodes() == topo.nodes()
        assert [l.endpoints for l in clone.links()] == [l.endpoints for l in topo.links()]
        clone.add_link("c", "a")
        assert topo.num_links == 2  # original untouched

    def test_subgraph_reindexes_links(self):
        topo = Topology()
        topo.add_links([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
        sub = topo.subgraph(["b", "c", "d"])
        assert sub.num_nodes == 3
        assert sub.num_links == 2
        assert [link.index for link in sub.links()] == [0, 1]

    def test_subgraph_unknown_node(self):
        topo = Topology()
        topo.add_link("a", "b")
        with pytest.raises(NodeNotFoundError):
            topo.subgraph(["a", "zz"])

    def test_networkx_round_trip_preserves_link_indices(self):
        topo = Topology(name="rt")
        topo.add_links([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        back = Topology.from_networkx(topo.to_networkx())
        assert back.num_links == topo.num_links
        for original, restored in zip(topo.links(), back.links()):
            assert original.key() == restored.key()
            assert original.index == restored.index

    def test_from_networkx_without_indices(self):
        import networkx as nx

        graph = nx.path_graph(4)
        topo = Topology.from_networkx(graph, name="p4")
        assert topo.num_nodes == 4
        assert topo.num_links == 3
