"""Tests for topology serialization."""

import pytest

from repro.exceptions import SerializationError
from repro.topology.generators.simple import grid_topology, paper_example_network
from repro.topology.serialization import (
    load_topology,
    save_topology,
    topology_from_edge_list,
    topology_from_json,
    topology_to_edge_list,
    topology_to_json,
)


class TestJsonRoundTrip:
    def test_paper_network_round_trips_exactly(self):
        topo = paper_example_network()
        back = topology_from_json(topology_to_json(topo))
        assert back.name == topo.name
        assert back.nodes() == topo.nodes()
        assert [l.endpoints for l in back.links()] == [l.endpoints for l in topo.links()]

    def test_tuple_labels_round_trip(self):
        topo = grid_topology(2, 2)
        back = topology_from_json(topology_to_json(topo))
        assert back.nodes() == topo.nodes()
        assert all(isinstance(node, tuple) for node in back.nodes())

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            topology_from_json("{not json")

    def test_wrong_format_marker(self):
        with pytest.raises(SerializationError, match="repro-topology"):
            topology_from_json('{"format": "something-else"}')

    def test_wrong_version(self):
        with pytest.raises(SerializationError, match="version"):
            topology_from_json(
                '{"format": "repro-topology", "version": 99, "nodes": [], "links": []}'
            )

    def test_malformed_link_entry(self):
        doc = (
            '{"format": "repro-topology", "version": 1, "name": "",'
            ' "nodes": ["a", "b"], "links": [["a"]]}'
        )
        with pytest.raises(SerializationError, match="malformed"):
            topology_from_json(doc)

    def test_nonfinite_numeric_label_rejected(self):
        """A float('inf') node label would emit a bare Infinity token that
        strict JSON parsers reject; the serializer refuses it instead."""
        from repro.topology.graph import Topology

        topo = Topology(name="bad")
        topo.add_link(float("inf"), "b")
        with pytest.raises(SerializationError, match="non-serializable"):
            topology_to_json(topo)


class TestEdgeList:
    def test_round_trip(self):
        topo = paper_example_network()
        back = topology_from_edge_list(topology_to_edge_list(topo))
        assert back.num_nodes == topo.num_nodes
        assert back.num_links == topo.num_links

    def test_comments_and_blank_lines_ignored(self):
        topo = topology_from_edge_list("# hello\n\na b\nb c\n")
        assert topo.num_links == 2

    def test_whitespace_label_rejected_on_write(self):
        from repro.topology.graph import Topology

        topo = Topology()
        topo.add_link("a b", "c")
        with pytest.raises(SerializationError, match="whitespace"):
            topology_to_edge_list(topo)

    def test_short_line_rejected(self):
        with pytest.raises(SerializationError, match="line 1"):
            topology_from_edge_list("lonely\n")


class TestFileHelpers:
    def test_save_load_json(self, tmp_path):
        topo = paper_example_network()
        path = tmp_path / "net.json"
        save_topology(topo, path)
        assert load_topology(path).num_links == topo.num_links

    def test_save_load_edges(self, tmp_path):
        topo = paper_example_network()
        path = tmp_path / "net.edges"
        save_topology(topo, path)
        loaded = load_topology(path)
        assert loaded.num_links == topo.num_links
        assert loaded.name == "net"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_topology(tmp_path / "missing.json")
