"""Tests for the Waxman and fat-tree generators."""

import pytest

from repro.exceptions import ValidationError
from repro.topology.analysis import is_connected
from repro.topology.generators.extra import fat_tree_topology, waxman_topology


class TestWaxman:
    def test_deterministic(self):
        a = waxman_topology(30, seed=1)
        b = waxman_topology(30, seed=1)
        assert a.nodes() == b.nodes()
        assert [l.key() for l in a.links()] == [l.key() for l in b.links()]

    def test_giant_mode_connected(self):
        assert is_connected(waxman_topology(40, seed=2))

    def test_alpha_controls_density(self):
        sparse = waxman_topology(40, alpha=0.1, connect="none", seed=3)
        dense = waxman_topology(40, alpha=0.9, connect="none", seed=3)
        assert dense.num_links > sparse.num_links

    def test_beta_controls_locality(self):
        """Small beta -> only short links survive."""
        local = waxman_topology(60, beta=0.05, connect="none", seed=4)
        spread = waxman_topology(60, beta=1.0, connect="none", seed=4)

        def mean_link_length(topo):
            import math

            total = 0.0
            for link in topo.links():
                (x1, y1), (x2, y2) = topo.positions[link.u], topo.positions[link.v]
                total += math.hypot(x1 - x2, y1 - y2)
            return total / max(topo.num_links, 1)

        assert mean_link_length(local) < mean_link_length(spread)

    def test_positions_attached(self):
        topo = waxman_topology(20, seed=5)
        assert set(topo.positions) == set(topo.nodes())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"beta": 0.0},
            {"connect": "bogus"},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(num_nodes=20, seed=0)
        base.update(kwargs)
        with pytest.raises(ValidationError):
            waxman_topology(**base)


class TestFatTree:
    def test_k4_counts(self):
        topo = fat_tree_topology(4)
        # 4 core + 4 pods x (2 agg + 2 edge) = 20 switches
        assert topo.num_nodes == 20
        # agg-core: 4 pods x 2 agg x 2 cores = 16; agg-edge: 4 x 2 x 2 = 16
        assert topo.num_links == 32

    def test_connected(self):
        assert is_connected(fat_tree_topology(4))
        assert is_connected(fat_tree_topology(6))

    def test_edge_switch_degree(self):
        topo = fat_tree_topology(4)
        for node in topo.nodes():
            if node[0] == "edge":
                assert topo.degree(node) == 2  # k/2 aggregation uplinks

    def test_core_degree_is_k(self):
        topo = fat_tree_topology(4)
        for node in topo.nodes():
            if node[0] == "core":
                assert topo.degree(node) == 4  # one agg per pod

    def test_path_diversity_between_pods(self):
        """Any two edge switches in different pods have k/2 * ... multiple
        disjoint routes — at least two distinct simple paths exist."""
        from repro.routing.ksp import k_shortest_paths

        topo = fat_tree_topology(4)
        paths = k_shortest_paths(topo, ("edge", 0, 0), ("edge", 1, 0), 4)
        assert len(paths) >= 2

    @pytest.mark.parametrize("bad", [0, 3, 5, -2])
    def test_validation(self, bad):
        with pytest.raises(ValidationError):
            fat_tree_topology(bad)
