"""Tests for the random geometric graph generator."""

import math

import numpy as np
import pytest

from repro.exceptions import DisconnectedTopologyError, ValidationError
from repro.topology.analysis import is_connected
from repro.topology.generators.geometric import (
    _radius_for_mean_degree,
    random_geometric_topology,
)


class TestRadiusDerivation:
    def test_uncorrected_radius_formula(self):
        r = _radius_for_mean_degree(5.0, 5.0, 100.0, boundary_correction=False)
        assert r == pytest.approx(math.sqrt(5.0 / (5.0 * math.pi)))

    def test_corrected_radius_is_larger(self):
        side = math.sqrt(100 / 5.0)
        naive = _radius_for_mean_degree(5.0, 5.0, side, boundary_correction=False)
        corrected = _radius_for_mean_degree(5.0, 5.0, side, boundary_correction=True)
        assert corrected > naive

    def test_correction_negligible_for_huge_region(self):
        naive = _radius_for_mean_degree(5.0, 5.0, 1e6, boundary_correction=False)
        corrected = _radius_for_mean_degree(5.0, 5.0, 1e6, boundary_correction=True)
        assert corrected == pytest.approx(naive, rel=1e-3)


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = random_geometric_topology(40, seed=7)
        b = random_geometric_topology(40, seed=7)
        assert a.nodes() == b.nodes()
        assert [l.key() for l in a.links()] == [l.key() for l in b.links()]

    def test_giant_mode_returns_connected(self):
        topo = random_geometric_topology(60, seed=1, connect="giant")
        assert is_connected(topo)

    def test_giant_keeps_most_nodes_at_paper_density(self):
        sizes = [
            random_geometric_topology(100, density=5.0, mean_degree=5.0, seed=s).num_nodes
            for s in range(5)
        ]
        assert np.mean(sizes) >= 70

    def test_realised_mean_degree_close_to_target(self):
        degrees = []
        for seed in range(8):
            topo = random_geometric_topology(
                100, density=5.0, mean_degree=5.0, connect="none", seed=seed
            )
            degrees.append(2 * topo.num_links / topo.num_nodes)
        assert abs(float(np.mean(degrees)) - 5.0) < 0.8

    def test_none_mode_may_be_disconnected(self):
        topo = random_geometric_topology(100, mean_degree=2.0, connect="none", seed=0)
        assert topo.num_nodes == 100  # nothing dropped

    def test_retry_mode_gives_connected_when_dense(self):
        topo = random_geometric_topology(
            30, density=5.0, mean_degree=12.0, connect="retry", seed=2
        )
        assert is_connected(topo)

    def test_retry_mode_raises_when_hopeless(self):
        with pytest.raises(DisconnectedTopologyError):
            random_geometric_topology(
                100, mean_degree=1.0, connect="retry", max_retries=3, seed=0
            )

    def test_positions_attached(self):
        topo = random_geometric_topology(20, seed=3)
        positions = topo.positions
        assert set(positions) == set(topo.nodes())
        side = math.sqrt(20 / 5.0)
        for x, y in positions.values():
            assert 0.0 <= x <= side and 0.0 <= y <= side

    def test_links_respect_radius(self):
        topo = random_geometric_topology(30, seed=4, connect="none")
        positions = topo.positions
        radius = _radius_for_mean_degree(
            5.0, 5.0, math.sqrt(30 / 5.0), boundary_correction=True
        )
        for link in topo.links():
            ax, ay = positions[link.u]
            bx, by = positions[link.v]
            assert math.hypot(ax - bx, ay - by) <= radius + 1e-9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"density": 0.0},
            {"mean_degree": -1.0},
            {"connect": "bogus"},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(num_nodes=20, density=5.0, mean_degree=5.0, seed=0)
        base.update(kwargs)
        with pytest.raises(ValidationError):
            random_geometric_topology(**base)
