"""Tests for topology analysis helpers."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.topology.analysis import (
    articulation_points,
    bfs_distances,
    connected_components,
    degree_histogram,
    is_connected,
    link_cut_between,
    node_connectivity_summary,
)
from repro.topology.generators.simple import (
    grid_topology,
    path_topology,
    ring_topology,
    star_topology,
)
from repro.topology.graph import Topology


class TestConnectivity:
    def test_connected_ring(self):
        assert is_connected(ring_topology(5))

    def test_disconnected_two_components(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_link("c", "d")
        assert not is_connected(topo)
        comps = connected_components(topo)
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_single_node_connected(self):
        topo = Topology()
        topo.add_node("solo")
        assert is_connected(topo)

    def test_empty_connected(self):
        assert is_connected(Topology())


class TestBfs:
    def test_distances_on_path(self):
        topo = path_topology(5)
        dist = bfs_distances(topo, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_nodes_absent(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_node("island")
        dist = bfs_distances(topo, "a")
        assert "island" not in dist

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(path_topology(3), 99)


class TestDegreeHistogram:
    def test_star(self):
        hist = degree_histogram(star_topology(4))
        assert hist == {1: 4, 4: 1}

    def test_ring_uniform(self):
        assert degree_histogram(ring_topology(6)) == {2: 6}


class TestArticulationPoints:
    def test_path_interior_nodes_are_cut_vertices(self):
        topo = path_topology(5)
        assert articulation_points(topo) == {1, 2, 3}

    def test_ring_has_none(self):
        assert articulation_points(ring_topology(6)) == set()

    def test_star_hub(self):
        assert articulation_points(star_topology(3)) == {0}

    def test_two_triangles_sharing_a_node(self):
        topo = Topology()
        topo.add_links([("a", "b"), ("b", "c"), ("c", "a")])
        topo.add_links([("c", "d"), ("d", "e"), ("e", "c")])
        assert articulation_points(topo) == {"c"}


class TestLinkCut:
    def test_path_cut_separates(self):
        topo = path_topology(4)
        cut = link_cut_between(topo, [0], [3])
        # Removing the cut links must disconnect 0 from 3.
        remaining = Topology()
        remaining.add_nodes(topo.nodes())
        for link in topo.links():
            if link.index not in cut:
                remaining.add_link(link.u, link.v)
        assert 3 not in bfs_distances(remaining, 0)

    def test_unknown_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            link_cut_between(path_topology(3), [0], [77])


class TestSummary:
    def test_grid_summary(self):
        summary = node_connectivity_summary(grid_topology(3, 3))
        assert summary["nodes"] == 9
        assert summary["links"] == 12
        assert summary["connected"] == 1.0
        assert summary["min_degree"] == 2.0
        assert summary["max_degree"] == 4.0

    def test_empty_summary(self):
        summary = node_connectivity_summary(Topology())
        assert summary["nodes"] == 0
        assert summary["connected"] == 1.0
