"""CLI surface of the sweep engine, happy path and error paths."""

import json

import pytest

from repro import config
from repro.cli import main


def write_spec(path, **overrides):
    doc = {
        "format": "repro-sweep",
        "version": 1,
        "name": "cli-unit",
        "seed": 5,
        "strategies": ["chosen-victim", "naive"],
        "topologies": [{"kind": "fig1"}],
        "attacker_counts": [1, 2],
    }
    doc.update(overrides)
    path.write_text(json.dumps(doc))
    return path


@pytest.fixture()
def spec_file(tmp_path):
    return write_spec(tmp_path / "spec.json")


class TestHappyPath:
    def test_full_run_prints_summary(self, spec_file, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec_file), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "4 ran, 0 skipped, 0 remaining (4 total)" in text
        assert "Sweep summary (4 points)" in text
        assert "chosen-victim" in text and "naive" in text
        assert out.exists()

    def test_budget_then_resume(self, spec_file, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(
            ["sweep", str(spec_file), "--out", str(out), "--max-points", "1"]
        ) == 0
        assert "partial grid" in capsys.readouterr().out
        assert main(["sweep", str(spec_file), "--out", str(out), "--resume"]) == 0
        assert "3 ran, 1 skipped, 0 remaining" in capsys.readouterr().out

    def test_resume_with_zero_remaining_points(self, spec_file, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec_file), "--out", str(out)]) == 0
        capsys.readouterr()
        before = out.read_bytes()
        assert main(["sweep", str(spec_file), "--out", str(out), "--resume"]) == 0
        assert "0 ran, 4 skipped, 0 remaining" in capsys.readouterr().out
        assert out.read_bytes() == before


class TestErrorPaths:
    def test_missing_spec_file(self, tmp_path, capsys):
        assert main(["sweep", str(tmp_path / "nope.json")]) == 1
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_malformed_spec_json(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text("{this is not json")
        assert main(["sweep", str(spec)]) == 1
        assert "invalid sweep spec JSON" in capsys.readouterr().err

    def test_invalid_spec_contents(self, tmp_path, capsys):
        spec = write_spec(tmp_path / "bad.json", strategies=["divide-and-conquer"])
        assert main(["sweep", str(spec)]) == 1
        assert "unknown strategy" in capsys.readouterr().err

    def test_existing_results_without_resume_refused(self, spec_file, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec_file), "--out", str(out)]) == 0
        capsys.readouterr()
        before = out.read_bytes()
        assert main(["sweep", str(spec_file), "--out", str(out)]) == 1
        assert "already exists" in capsys.readouterr().err
        assert out.read_bytes() == before

    def test_corrupt_checkpoint_refused_not_clobbered(
        self, spec_file, tmp_path, capsys
    ):
        out = tmp_path / "results.jsonl"
        assert main(
            ["sweep", str(spec_file), "--out", str(out), "--max-points", "1"]
        ) == 0
        capsys.readouterr()
        out.write_bytes(out.read_bytes() + b'{"kind": "point", "trunca')
        before = out.read_bytes()
        assert main(["sweep", str(spec_file), "--out", str(out), "--resume"]) == 1
        assert "corrupt" in capsys.readouterr().err
        assert out.read_bytes() == before

    def test_foreign_checkpoint_refused(self, spec_file, tmp_path, capsys):
        out = tmp_path / "results.jsonl"
        assert main(["sweep", str(spec_file), "--out", str(out)]) == 0
        capsys.readouterr()
        other = write_spec(tmp_path / "other.json", seed=6)
        assert main(["sweep", str(other), "--out", str(out), "--resume"]) == 1
        assert "different sweep spec" in capsys.readouterr().err


class TestCacheReuse:
    @pytest.mark.skipif(
        config.get_str("REPRO_BACKEND").lower() == "sparse",
        reason="REPRO_BACKEND=sparse: no dense factors to persist",
    )
    def test_second_run_warm_starts_from_store_byte_identical(
        self, spec_file, tmp_path, monkeypatch
    ):
        """Two CLI invocations share factorizations via REPRO_CACHE_DIR."""
        from repro.obs import core as obs
        from repro.obs.summary import read_events

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        assert main(["sweep", str(spec_file), "--out", str(first)]) == 0
        assert list((tmp_path / "cache").rglob("*.npz"))  # store populated

        log_path = tmp_path / "run.jsonl"
        with obs.enabled(log_path):
            assert main(["sweep", str(spec_file), "--out", str(second)]) == 0
        hits = [
            r
            for r in read_events(log_path)
            if r.get("name") == "sweep_store" and r.get("op") == "load" and r.get("hit")
        ]
        assert hits  # the second run warm-started from the first run's store

        # results are byte-identical with and without the warm start
        assert second.read_bytes() == first.read_bytes()
        monkeypatch.delenv("REPRO_CACHE_DIR")
        cold = tmp_path / "cold.jsonl"
        assert main(["sweep", str(spec_file), "--out", str(cold)]) == 0
        assert cold.read_bytes() == first.read_bytes()


class TestBenchTarget:
    @pytest.mark.slow
    def test_bench_sweep_writes_payload(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "sweep", "--repeat", "1", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "sweep_cache" in text
        payload = json.loads(out.read_text())
        bench = payload["benchmarks"]["sweep_cache"]
        assert bench["points"] == 6
        assert bench["cold_s"] > 0 and bench["cached_s"] > 0
        assert bench["cache_stats"]["system_hit"] > 0
        assert bench["identical"] == {"cached_vs_cold": True, "store_vs_cold": True}
        assert bench["store_phase"]["warm_store_stats"]["hit"] >= 1
