"""Per-estimator golden fixtures on the 18-point acceptance grid.

One fixture per zoo family under ``tests/fixtures/golden/`` pins, for
every point of the acceptance grid (3 strategies x 2 topologies x 3
attacker counts, seed 7), the attack's feasibility, the detector verdict
under that family, and the damage — plus the grid-level attack-success
and detection rates.  Any estimator-side drift (a solver change shifting
the L1 vertex, a recalibrated threshold, a changed MAP prior default)
fails with a field-by-field diff instead of silently changing the
paper's headline numbers.

Regenerate intentionally with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sweep/test_golden_estimators.py

The digest-stability tests at the bottom pin the cache-compatibility
contract: naming an estimator (or changing its params) re-keys every
grid point, while omitting it leaves the historical digests untouched.
"""

import json
import os
from pathlib import Path

import pytest

from repro.sweep import SweepSpec, run_sweep

GOLDEN_DIR = Path(__file__).parents[1] / "fixtures" / "golden"
TOLERANCE = 1e-6

#: The families the ablation ships with, with any non-default params.
ESTIMATORS = {
    "ls": {},
    "bayes-map": {"prior_var": 1e6},
    "l1": {},
}


def grid_doc(estimator: str, params: dict) -> dict:
    attack = {"estimator": estimator}
    if params:
        attack["estimator_params"] = params
    return {
        "format": "repro-sweep",
        "version": 1,
        "name": f"golden-{estimator}",
        "seed": 7,
        "strategies": ["chosen-victim", "max-damage", "obfuscation"],
        "topologies": [{"kind": "fig1"}, {"kind": "grid", "rows": 3, "cols": 3}],
        "attacker_counts": [1, 2, 3],
        "attack": attack,
    }


def compute_record(estimator: str, params: dict, tmp_path: Path) -> dict:
    spec = SweepSpec.from_dict(grid_doc(estimator, params))
    summary = run_sweep(spec, results_path=tmp_path / f"{estimator}.jsonl", workers=1)
    points = [
        {
            "topology": p["topology"],
            "strategy": p["strategy"],
            "num_attackers": p["num_attackers"],
            "feasible": p["feasible"],
            "detected": p["detected"],
            "damage": p["damage"],
        }
        for p in summary["points"]
    ]
    feasible = [p for p in points if p["feasible"]]
    detected = [p for p in feasible if p["detected"]]
    return {
        "estimator": estimator,
        "estimator_params": params,
        "num_points": len(points),
        "attack_success_rate": len(feasible) / len(points),
        "detection_rate": (len(detected) / len(feasible)) if feasible else None,
        "points": points,
    }


def _diff(expected: dict, actual: dict) -> list[str]:
    problems = []
    for key in sorted(set(expected) | set(actual)):
        if key not in expected or key not in actual:
            problems.append(
                f"  {key}: only in {'actual' if key in actual else 'golden'}"
            )
            continue
        want, got = expected[key], actual[key]
        if key == "points":
            for index, (w, g) in enumerate(zip(want, got)):
                for field in sorted(set(w) | set(g)):
                    wv, gv = w.get(field), g.get(field)
                    if field == "damage":
                        if abs(wv - gv) > TOLERANCE:
                            problems.append(
                                f"  points[{index}].damage: golden {wv!r} "
                                f"!= actual {gv!r}"
                            )
                    elif wv != gv:
                        problems.append(
                            f"  points[{index}].{field}: golden {wv!r} "
                            f"!= actual {gv!r}"
                        )
            if len(want) != len(got):
                problems.append(f"  points: length {len(want)} != {len(got)}")
        elif isinstance(want, float) and isinstance(got, float):
            if abs(want - got) > TOLERANCE:
                problems.append(f"  {key}: golden {want!r} != actual {got!r}")
        elif want != got:
            problems.append(f"  {key}: golden {want!r} != actual {got!r}")
    return problems


@pytest.mark.slow
@pytest.mark.parametrize("estimator", sorted(ESTIMATORS))
def test_estimator_golden_fixture(estimator, tmp_path):
    fixture = GOLDEN_DIR / f"estimator_{estimator.replace('-', '_')}.json"
    actual = compute_record(estimator, ESTIMATORS[estimator], tmp_path)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        fixture.parent.mkdir(parents=True, exist_ok=True)
        fixture.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    if not fixture.exists():
        pytest.fail(
            f"golden fixture {fixture} missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
    expected = json.loads(fixture.read_text())
    problems = _diff(expected, actual)
    if problems:
        pytest.fail(
            f"golden drift for estimator {estimator} (fixture {fixture.name}):\n"
            + "\n".join(problems)
            + "\n(if intentional, regenerate with REPRO_REGEN_GOLDEN=1 and commit)"
        )


def test_estimator_fixtures_committed():
    missing = [
        name
        for name in ESTIMATORS
        if not (GOLDEN_DIR / f"estimator_{name.replace('-', '_')}.json").exists()
    ]
    assert not missing, f"estimator golden fixtures missing for {missing}"


class TestDigestStability:
    """Estimator keys are optional-by-absence in the point digests."""

    def _digests(self, doc):
        return [p.digest for p in SweepSpec.from_dict(doc).expand()]

    def _base_doc(self):
        doc = grid_doc("ls", {})
        del doc["attack"]
        doc["name"] = "golden-base"
        return doc

    def test_omitting_the_estimator_keeps_digests_byte_identical(self):
        base = self._digests(self._base_doc())
        again = self._digests(self._base_doc())
        assert base == again
        # An explicit empty attack section is the same spec.
        empty = self._base_doc()
        empty["attack"] = {}
        assert self._digests(empty) == base

    def test_naming_an_estimator_rekeys_every_point(self):
        base = self._digests(self._base_doc())
        named = self._base_doc()
        named["attack"] = {"estimator": "ls"}
        rekeyed = self._digests(named)
        assert len(base) == len(rekeyed)
        assert not set(base) & set(rekeyed)

    def test_params_rekey_every_point(self):
        narrow = self._base_doc()
        narrow["attack"] = {
            "estimator": "bayes-map",
            "estimator_params": {"prior_var": 1e4},
        }
        wide = self._base_doc()
        wide["attack"] = {
            "estimator": "bayes-map",
            "estimator_params": {"prior_var": 1e6},
        }
        assert not set(self._digests(narrow)) & set(self._digests(wide))

    def test_params_without_estimator_rejected(self):
        from repro.exceptions import ValidationError

        doc = self._base_doc()
        doc["attack"] = {"estimator_params": {"prior_var": 1e4}}
        with pytest.raises(ValidationError, match="estimator"):
            SweepSpec.from_dict(doc)
