"""Golden regression fixtures: one tiny scenario per attack strategy.

Each fixture under ``tests/fixtures/golden/`` pins the exact planner
output — estimate ``x_hat``, damage, feasibility, detector verdict — of
one strategy on the deterministic Fig. 1 scenario.  Any drift (solver
upgrade, refactor, accidental semantic change) fails with a readable
field-by-field diff.

Regenerate intentionally with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sweep/test_golden.py

and review the fixture diff in git before committing.
"""

import json
import os
from pathlib import Path

import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.detection.auditor import TomographyAuditor
from repro.scenarios.simple_network import (
    PAPER_EXAMPLE_ATTACKERS,
    PAPER_VICTIM_LINK,
    paper_fig1_scenario,
)

GOLDEN_DIR = Path(__file__).parents[1] / "fixtures" / "golden"
TOLERANCE = 1e-6

STRATEGIES = ["chosen-victim", "max-damage", "obfuscation"]


def compute_record(strategy: str) -> dict:
    """The canonical planner output for one golden scenario."""
    scenario = paper_fig1_scenario()
    context = scenario.attack_context(PAPER_EXAMPLE_ATTACKERS)
    if strategy == "chosen-victim":
        outcome = ChosenVictimAttack(context, [PAPER_VICTIM_LINK]).run()
    elif strategy == "max-damage":
        outcome = MaxDamageAttack(context).run()
    else:
        outcome = ObfuscationAttack(context, min_victims=2).run()
    record = {
        "strategy": strategy,
        "attackers": list(PAPER_EXAMPLE_ATTACKERS),
        "feasible": bool(outcome.feasible),
        "damage": float(outcome.damage),
        "victim_links": [int(v) for v in outcome.victim_links],
        "status": str(outcome.status),
        "x_hat": [float(v) for v in outcome.predicted_estimate],
        "abnormal_links": [int(v) for v in outcome.diagnosis.abnormal],
    }
    report = TomographyAuditor(scenario.path_set, alpha=200.0).audit(
        outcome.observed_measurements
    )
    record["detected"] = bool(not report.trustworthy)
    record["residual_l1"] = float(report.detection.residual_l1)
    return record


def _diff(expected: dict, actual: dict) -> list[str]:
    """Human-readable field-by-field drift report (empty = match)."""
    problems = []
    for key in sorted(set(expected) | set(actual)):
        if key not in expected or key not in actual:
            problems.append(f"  {key}: only in {'actual' if key in actual else 'golden'}")
            continue
        want, got = expected[key], actual[key]
        if key in ("damage", "residual_l1"):
            if abs(want - got) > TOLERANCE:
                problems.append(f"  {key}: golden {want!r} != actual {got!r}")
        elif key == "x_hat":
            if len(want) != len(got):
                problems.append(f"  x_hat: length {len(want)} != {len(got)}")
                continue
            for index, (w, g) in enumerate(zip(want, got)):
                if abs(w - g) > TOLERANCE:
                    problems.append(
                        f"  x_hat[{index}]: golden {w:.6f} != actual {g:.6f} "
                        f"(drift {g - w:+.2e})"
                    )
        elif want != got:
            problems.append(f"  {key}: golden {want!r} != actual {got!r}")
    return problems


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_golden_fixture(strategy):
    fixture = GOLDEN_DIR / f"{strategy.replace('-', '_')}.json"
    actual = compute_record(strategy)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        fixture.parent.mkdir(parents=True, exist_ok=True)
        fixture.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    if not fixture.exists():
        pytest.fail(
            f"golden fixture {fixture} missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
    expected = json.loads(fixture.read_text())
    problems = _diff(expected, actual)
    if problems:
        pytest.fail(
            f"golden drift for {strategy} (fixture {fixture.name}):\n"
            + "\n".join(problems)
            + "\n(if intentional, regenerate with REPRO_REGEN_GOLDEN=1 and commit)"
        )


def test_golden_fixtures_committed():
    """All three fixtures exist — a fresh checkout must not silently skip."""
    missing = [
        s for s in STRATEGIES
        if not (GOLDEN_DIR / f"{s.replace('-', '_')}.json").exists()
    ]
    assert not missing, f"golden fixtures missing for {missing}"
