"""Sweep spec parsing, validation, and grid expansion."""

import json
import math

import pytest

from repro.exceptions import SerializationError, ValidationError
from repro.sweep.spec import STRATEGIES, TOPOLOGY_KINDS, SweepSpec, build_topology


def minimal_doc(**overrides) -> dict:
    doc = {
        "format": "repro-sweep",
        "version": 1,
        "name": "unit",
        "seed": 3,
        "strategies": ["chosen-victim", "max-damage"],
        "topologies": [{"kind": "fig1"}, {"kind": "grid", "rows": 3, "cols": 3}],
        "attacker_counts": [1, 2],
    }
    doc.update(overrides)
    return doc


class TestParsing:
    def test_round_trip_preserves_digest(self):
        spec = SweepSpec.from_dict(minimal_doc())
        again = SweepSpec.from_dict(spec.to_dict())
        assert again.digest == spec.digest
        assert again.to_dict() == spec.to_dict()

    def test_from_json_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(minimal_doc()))
        assert SweepSpec.load(path).digest == SweepSpec.from_dict(minimal_doc()).digest

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError, match="invalid sweep spec JSON"):
            SweepSpec.from_json("{not json")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read sweep spec"):
            SweepSpec.load(tmp_path / "nope.json")

    def test_wrong_format_and_version_rejected(self):
        with pytest.raises(SerializationError, match="format"):
            SweepSpec.from_dict(minimal_doc(format="other"))
        with pytest.raises(SerializationError, match="version"):
            SweepSpec.from_dict(minimal_doc(version=99))
        with pytest.raises(SerializationError):
            SweepSpec.from_dict(["not", "an", "object"])

    def test_unknown_fields_rejected_everywhere(self):
        with pytest.raises(ValidationError, match="unknown sweep spec fields"):
            SweepSpec.from_dict(minimal_doc(extra=1))
        with pytest.raises(ValidationError, match="unknown scenario keys"):
            SweepSpec.from_dict(minimal_doc(scenario={"capz": 1}))
        with pytest.raises(ValidationError, match="unknown attack keys"):
            SweepSpec.from_dict(minimal_doc(attack={"modez": "paper"}))
        with pytest.raises(ValidationError, match="unknown parameters"):
            SweepSpec.from_dict(minimal_doc(topologies=[{"kind": "grid", "size": 3}]))

    def test_bad_strategies_rejected(self):
        with pytest.raises(ValidationError, match="unknown strategy"):
            SweepSpec.from_dict(minimal_doc(strategies=["divide-and-conquer"]))
        with pytest.raises(ValidationError, match="duplicates"):
            SweepSpec.from_dict(minimal_doc(strategies=["naive", "naive"]))
        with pytest.raises(ValidationError, match="non-empty"):
            SweepSpec.from_dict(minimal_doc(strategies=[]))

    def test_bad_topologies_rejected(self):
        with pytest.raises(ValidationError, match="unknown kind"):
            SweepSpec.from_dict(minimal_doc(topologies=[{"kind": "torus"}]))
        with pytest.raises(ValidationError, match="unique"):
            SweepSpec.from_dict(
                minimal_doc(topologies=[{"kind": "fig1"}, {"kind": "fig1"}])
            )

    def test_bad_attacker_counts_rejected(self):
        with pytest.raises(ValidationError, match=">= 1"):
            SweepSpec.from_dict(minimal_doc(attacker_counts=[0]))
        with pytest.raises(ValidationError, match="duplicates"):
            SweepSpec.from_dict(minimal_doc(attacker_counts=[2, 2]))
        with pytest.raises(ValidationError, match="integers"):
            SweepSpec.from_dict(minimal_doc(attacker_counts=[True]))

    def test_bad_attack_block_rejected(self):
        with pytest.raises(ValidationError, match="mode"):
            SweepSpec.from_dict(minimal_doc(attack={"mode": "greedy"}))
        with pytest.raises(ValidationError, match="min_victims"):
            SweepSpec.from_dict(minimal_doc(attack={"min_victims": 0}))

    def test_attack_defaults_applied(self):
        spec = SweepSpec.from_dict(minimal_doc())
        assert spec.attack == {
            "mode": "paper",
            "confined": False,
            "stealthy": False,
            "min_victims": 2,
            "alpha": 200.0,
        }
        # max_victims is optional-by-absence: no default entry, so specs
        # that never set it keep their historical point digests
        assert "max_victims" not in spec.attack

    def test_max_victims_validated_against_min(self):
        spec = SweepSpec.from_dict(
            minimal_doc(attack={"min_victims": 2, "max_victims": 4})
        )
        assert spec.attack["max_victims"] == 4
        with pytest.raises(ValidationError, match="max_victims"):
            SweepSpec.from_dict(minimal_doc(attack={"min_victims": 3, "max_victims": 2}))
        with pytest.raises(ValidationError, match="max_victims"):
            SweepSpec.from_dict(minimal_doc(attack={"max_victims": "4"}))
        with pytest.raises(ValidationError, match="max_victims"):
            SweepSpec.from_dict(minimal_doc(attack={"min_victims": 1, "max_victims": True}))

    def test_max_victims_changes_digests_only_when_set(self):
        base = SweepSpec.from_dict(minimal_doc()).expand()
        ranged = SweepSpec.from_dict(
            minimal_doc(attack={"min_victims": 2, "max_victims": 3})
        ).expand()
        assert [p.digest for p in base] != [p.digest for p in ranged]
        again = SweepSpec.from_dict(minimal_doc()).expand()
        assert [p.digest for p in base] == [p.digest for p in again]

    def test_infinity_sentinel_round_trips(self):
        spec = SweepSpec.from_dict(minimal_doc(scenario={"cap": "Infinity"}))
        assert math.isinf(spec.scenario["cap"])
        assert spec.to_dict()["scenario"]["cap"] == "Infinity"
        # the canonical document stays strict JSON
        json.loads(json.dumps(spec.to_dict(), allow_nan=False))


class TestExpansion:
    def test_topology_major_order_and_indices(self):
        spec = SweepSpec.from_dict(minimal_doc())
        points = spec.expand()
        assert [p.index for p in points] == list(range(spec.num_points()))
        assert len(points) == 2 * 2 * 2
        # all points of topology 0 precede all points of topology 1
        boundary = [p.topology_index for p in points]
        assert boundary == sorted(boundary)

    def test_digests_unique_and_position_independent(self):
        spec = SweepSpec.from_dict(minimal_doc())
        points = spec.expand()
        assert len({p.digest for p in points}) == len(points)
        # reversing the strategy axis permutes indices but preserves the
        # digest of each (topology, strategy, count) cell
        reordered = SweepSpec.from_dict(
            minimal_doc(strategies=["max-damage", "chosen-victim"])
        )
        by_cell = {
            (p.topology_label, p.strategy, p.num_attackers): p.digest for p in points
        }
        for p in reordered.expand():
            assert by_cell[(p.topology_label, p.strategy, p.num_attackers)] == p.digest

    def test_auto_and_explicit_labels(self):
        spec = SweepSpec.from_dict(
            minimal_doc(
                topologies=[
                    {"kind": "grid", "rows": 3, "cols": 4},
                    {"kind": "ring", "num_nodes": 5, "label": "pentagon"},
                ]
            )
        )
        assert [t["label"] for t in spec.topologies] == ["grid-3-4", "pentagon"]


class TestBuildTopology:
    @pytest.mark.parametrize(
        "entry",
        [
            {"kind": "fig1"},
            {"kind": "grid", "rows": 3, "cols": 3},
            {"kind": "ladder", "rungs": 4},
            {"kind": "ring", "num_nodes": 6},
            {"kind": "tree", "depth": 3, "branching": 2},
            {"kind": "fattree", "k": 4},
            {"kind": "isp", "backbone_nodes": 5, "pops_per_backbone": 1},
            {"kind": "isp-large", "backbone_nodes": 6, "pops_per_backbone": 1},
            {"kind": "rgg", "num_nodes": 30},
            {"kind": "waxman", "num_nodes": 30},
        ],
    )
    def test_every_registered_kind_builds(self, entry):
        doc = minimal_doc(topologies=[entry])
        spec = SweepSpec.from_dict(doc)
        topology = build_topology(spec.topologies[0], seed=3)
        assert topology.num_nodes > 0
        assert topology.num_links > 0

    def test_registry_covers_spec_kinds(self):
        assert set(TOPOLOGY_KINDS) == {
            "fig1", "grid", "ladder", "ring", "tree", "fattree", "isp",
            "isp-large", "rgg", "waxman",
        }
        assert set(STRATEGIES) == {
            "chosen-victim", "max-damage", "obfuscation", "naive",
        }

    def test_seeded_kinds_reproducible(self):
        entry = SweepSpec.from_dict(
            minimal_doc(topologies=[{"kind": "rgg", "num_nodes": 30}])
        ).topologies[0]
        a = build_topology(entry, seed=11)
        b = build_topology(entry, seed=11)
        assert [(l.u, l.v) for l in a.links()] == [(l.u, l.v) for l in b.links()]
