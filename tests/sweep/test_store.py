"""The cross-process factorization store and its cache wiring.

Four families:

- **Round trips** — save/load returns the exact arrays, keyed by digest,
  with the hit/miss/write/skip stats the bench and CLI report.
- **Failure modes** — truncated or inconsistent blobs raise the typed
  :class:`~repro.exceptions.StoreCorruptError` and are left on disk;
  version-mismatched entries are misses; an unwritable directory degrades
  the store to in-memory with a single warning event.
- **Write discipline** — existing entries are never rewritten, temp files
  never linger, concurrent writers publish atomically (last complete
  write wins).
- **Cache integration** — a fresh :class:`FactorizationCache` over a
  populated store imports factors instead of re-running the SVD, grid
  records stay bit-identical, and each distinct matrix is hashed exactly
  once per process (the ``digest_compute`` white-box counter).
"""

import os

import numpy as np
import pytest

from repro import config
from repro.exceptions import StoreCorruptError, ValidationError
from repro.obs import core as obs
from repro.obs.manifest import matrix_digest
from repro.obs.summary import read_events
from repro.sweep import FactorizationCache, FactorizationStore, SweepSpec, run_grid_point
from repro.sweep.store import STORE_VERSION, default_store
from repro.tomography.linear_system import LinearSystem


# The store persists dense SVD factors only; forcing the sparse backend
# (the CI sparse smoke) legitimately bypasses it, so integration tests
# that assert a populated store skip there.  Direct store tests still run:
# they build their payloads with an explicit backend="dense" request,
# which outranks the environment override.
dense_backend_only = pytest.mark.skipif(
    config.get_str("REPRO_BACKEND").lower() == "sparse",
    reason="REPRO_BACKEND=sparse: no dense factors to persist",
)


def _matrix(seed: int = 7, shape: tuple[int, int] = (6, 5)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < 0.5).astype(float)


def _factors(matrix: np.ndarray) -> dict:
    payload = LinearSystem(matrix, backend="dense").export_factors()
    assert payload is not None
    return payload


class TestRoundTrip:
    def test_save_then_load_returns_exact_arrays(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        assert store.load(digest) is None
        assert store.stats["miss"] == 1

        factors = _factors(matrix)
        assert store.save(digest, factors, shape=matrix.shape) is True
        loaded = store.load(digest, shape=matrix.shape)
        assert loaded is not None
        for key in ("u", "s", "vt", "rank"):
            assert np.array_equal(loaded[key], np.asarray(factors[key]))
        assert store.stats["hit"] == 1 and store.stats["write"] == 1

    def test_second_process_handle_sees_completed_write(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        FactorizationStore(tmp_path).save(digest, _factors(matrix), shape=matrix.shape)
        # a fresh handle over the same root is "another process"
        assert FactorizationStore(tmp_path).load(digest) is not None

    def test_imported_factors_reproduce_estimates(self, tmp_path):
        matrix = _matrix(seed=11, shape=(8, 6))
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        reference = LinearSystem(matrix, backend="dense")
        store.save(digest, reference.export_factors(), shape=matrix.shape)

        warm = LinearSystem(matrix, backend="dense")
        assert warm.import_factors(store.load(digest)) is True
        observed = np.arange(matrix.shape[0], dtype=float)
        np.testing.assert_array_equal(
            warm.estimate(observed), reference.estimate(observed)
        )

    def test_malformed_digest_rejected(self, tmp_path):
        store = FactorizationStore(tmp_path)
        for bad in ("", "a/b", "a.b", "..", "a\\b"):
            with pytest.raises(ValidationError):
                store.entry_path(bad)

    def test_empty_root_rejected(self):
        with pytest.raises(ValidationError):
            FactorizationStore("")


class TestFailureModes:
    def test_truncated_blob_is_typed_corruption(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        store.save(digest, _factors(matrix), shape=matrix.shape)
        path = store.entry_path(digest)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(StoreCorruptError):
            store.load(digest)

    def test_non_npz_garbage_is_typed_corruption(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        path = store.entry_path(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz archive at all")
        with pytest.raises(StoreCorruptError):
            store.load(digest)

    def test_missing_arrays_is_typed_corruption(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        path = store.entry_path(digest)
        path.parent.mkdir(parents=True)
        np.savez(path, store_version=np.asarray(STORE_VERSION), digest=np.asarray(digest))
        with pytest.raises(StoreCorruptError, match="missing factor arrays"):
            store.load(digest)

    def test_wrong_embedded_digest_is_typed_corruption(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        store.save("0" * 64, _factors(matrix), shape=matrix.shape)
        # masquerade: move the blob under a different digest's path
        target = store.entry_path(digest)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(store.entry_path("0" * 64), target)
        with pytest.raises(StoreCorruptError, match="claims digest"):
            store.load(digest)

    def test_shape_mismatch_is_typed_corruption(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        store.save(digest, _factors(matrix), shape=matrix.shape)
        with pytest.raises(StoreCorruptError, match="shape"):
            store.load(digest, shape=(99, 98))

    def test_version_mismatch_is_a_miss_not_an_error(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        path = store.entry_path(digest)
        path.parent.mkdir(parents=True)
        factors = _factors(matrix)
        np.savez(
            path,
            store_version=np.asarray(STORE_VERSION + 1),
            digest=np.asarray(digest),
            shape=np.asarray(matrix.shape),
            **{k: np.asarray(v) for k, v in factors.items()},
        )
        assert store.load(digest) is None
        assert store.stats["miss"] == 1
        assert path.exists()  # old entry survives for the writer to refresh

    def test_unwritable_store_degrades_with_one_warning_event(
        self, tmp_path, monkeypatch
    ):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path / "store")

        def refuse(*args, **kwargs):
            raise OSError("read-only file system")

        monkeypatch.setattr("repro.sweep.store.os.replace", refuse)
        log_path = tmp_path / "run.jsonl"
        with obs.enabled(log_path):
            assert store.save(digest, _factors(matrix), shape=matrix.shape) is False
            # degraded: later saves are silent skips, loads still work
            assert store.save(digest, _factors(matrix), shape=matrix.shape) is False
            assert store.load(digest) is None
        assert store.stats["degraded"] == 1 and store.stats["skip"] == 1
        saves = [
            r
            for r in read_events(log_path)
            if r.get("name") == "sweep_store" and r.get("op") == "save"
        ]
        assert len(saves) == 1 and "read-only" in saves[0]["degraded"]
        # no temp litter even on the failure path
        assert not list((tmp_path / "store").rglob("*.tmp"))


class TestWriteDiscipline:
    def test_existing_entries_never_rewritten(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        store.save(digest, _factors(matrix), shape=matrix.shape)
        path = store.entry_path(digest)
        original = path.read_bytes()
        # a second save — even of different content — is refused
        other = {k: np.asarray(v) + 1.0 for k, v in _factors(matrix).items()}
        assert store.save(digest, other, shape=matrix.shape) is False
        assert store.stats["skip"] == 1
        assert path.read_bytes() == original

    def test_corrupt_entries_never_clobbered(self, tmp_path):
        matrix = _matrix()
        digest = matrix_digest(matrix)
        store = FactorizationStore(tmp_path)
        path = store.entry_path(digest)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"corrupt evidence")
        assert store.save(digest, _factors(matrix), shape=matrix.shape) is False
        assert path.read_bytes() == b"corrupt evidence"

    def test_concurrent_writers_publish_atomically(self, tmp_path, monkeypatch):
        """Two racing writers both run tmp+rename; the last complete wins."""
        matrix = _matrix()
        digest = matrix_digest(matrix)
        first = FactorizationStore(tmp_path)
        second = FactorizationStore(tmp_path)
        first.save(digest, _factors(matrix), shape=matrix.shape)
        # the second writer raced past the exists() check before the first
        # published — simulate by blinding its existence probe
        monkeypatch.setattr(type(first.entry_path(digest)), "exists", lambda self: False)
        assert second.save(digest, _factors(matrix), shape=matrix.shape) is True
        monkeypatch.undo()
        # the published blob is complete and valid, and nothing lingers
        assert first.load(digest, shape=matrix.shape) is not None
        assert not list(tmp_path.rglob("*.tmp"))

    def test_no_temp_files_after_save(self, tmp_path):
        matrix = _matrix()
        store = FactorizationStore(tmp_path)
        store.save(matrix_digest(matrix), _factors(matrix), shape=matrix.shape)
        assert not list(tmp_path.rglob("*.tmp"))


class TestDefaultStore:
    def test_env_unset_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_store() is None

    def test_env_names_the_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = default_store()
        assert store is not None and store.root == tmp_path

    def test_cache_resolves_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert FactorizationCache().store is not None
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert FactorizationCache().store is None
        # explicit always beats the environment
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert FactorizationCache(store=None).store is None


def _one_point_spec(seed: int = 9) -> SweepSpec:
    return SweepSpec.from_dict(
        {
            "format": "repro-sweep",
            "version": 1,
            "name": "store-int",
            "seed": seed,
            "strategies": ["chosen-victim"],
            "topologies": [{"kind": "fig1"}],
            "attacker_counts": [2],
        }
    )


class TestCacheIntegration:
    @dense_backend_only
    def test_fresh_cache_imports_instead_of_refactorizing(self, tmp_path):
        spec = _one_point_spec()
        (point,) = spec.expand()
        seeding = FactorizationCache(store=FactorizationStore(tmp_path))
        cold = run_grid_point(spec, point, cache=seeding, scenarios={})
        assert seeding.store.stats["write"] == 1

        warm = FactorizationCache(store=FactorizationStore(tmp_path))
        record = run_grid_point(spec, point, cache=warm, scenarios={})
        assert record == cold  # bit-identical across processes
        assert warm.stats["store_import"] == 1
        assert warm.store.stats["hit"] == 1

    @dense_backend_only
    def test_corrupt_store_entry_degrades_to_compute(self, tmp_path):
        spec = _one_point_spec()
        (point,) = spec.expand()
        seeding = FactorizationCache(store=FactorizationStore(tmp_path))
        cold = run_grid_point(spec, point, cache=seeding, scenarios={})
        (blob,) = list(tmp_path.rglob("*.npz"))
        blob.write_bytes(b"garbage")

        cache = FactorizationCache(store=FactorizationStore(tmp_path))
        record = run_grid_point(spec, point, cache=cache, scenarios={})
        assert record == cold  # the sweep survives, results unchanged
        assert cache.stats["store_corrupt"] == 1
        assert cache.stats["store_import"] == 0
        assert blob.read_bytes() == b"garbage"  # evidence untouched

    def test_each_matrix_hashed_exactly_once(self):
        """White-box: repeat lookups pay neither matrix build nor hashing."""
        spec = _one_point_spec()
        (point,) = spec.expand()
        cache = FactorizationCache(store=None)
        scenarios = {}
        for _ in range(4):
            run_grid_point(spec, point, cache=cache, scenarios=scenarios)
        assert cache.stats["digest_compute"] == 1

    def test_scenario_memo_skips_matrix_rebuild(self, fig1_scenario):
        cache = FactorizationCache(store=None)
        system = cache.scenario_system_for(fig1_scenario)
        for _ in range(3):
            assert cache.scenario_system_for(fig1_scenario) is system
            assert cache.auditor_for(fig1_scenario) is cache.auditor_for(fig1_scenario)
        assert cache.stats["digest_compute"] == 1

    @dense_backend_only
    def test_store_events_emitted_when_obs_active(self, tmp_path):
        spec = _one_point_spec()
        (point,) = spec.expand()
        log_path = tmp_path / "run.jsonl"
        with obs.enabled(log_path):
            seeding = FactorizationCache(store=FactorizationStore(tmp_path / "s"))
            run_grid_point(spec, point, cache=seeding, scenarios={})
            warm = FactorizationCache(store=FactorizationStore(tmp_path / "s"))
            run_grid_point(spec, point, cache=warm, scenarios={})
        ops = [
            (r["op"], r.get("hit"), r.get("written"))
            for r in read_events(log_path)
            if r.get("name") == "sweep_store"
        ]
        assert ("load", False, None) in ops  # the seeding process missed
        assert ("save", None, True) in ops  # ... and wrote
        assert ("load", True, None) in ops  # the second process hit


class TestScenarioStaleness:
    """Path churn under a memoised scenario must never serve stale factors."""

    def test_churned_path_set_rekeys_the_memo(self, tmp_path):
        from repro.scenarios.simple_network import paper_fig1_scenario

        scenario = paper_fig1_scenario()  # fresh: this test mutates it
        cache = FactorizationCache(store=None)
        log_path = tmp_path / "run.jsonl"
        with obs.enabled(log_path):
            stale = cache.scenario_system_for(scenario)
            assert cache.scenario_system_for(scenario) is stale
            scenario.path_set.remove(0)
            fresh = cache.scenario_system_for(scenario)
        assert fresh is not stale
        assert fresh.num_paths == stale.num_paths - 1
        assert fresh.digest != stale.digest
        assert cache.stats["scenario_stale_evict"] == 1
        events = [
            r
            for r in read_events(log_path)
            if r.get("name") == "sweep_store_stale_evict"
        ]
        assert len(events) == 1
        assert events[0]["stale_digest"] == stale.digest
        assert events[0]["version"] > events[0]["stale_version"]

    def test_rebuilt_memo_is_stable_again(self):
        from repro.scenarios.simple_network import paper_fig1_scenario

        scenario = paper_fig1_scenario()
        cache = FactorizationCache(store=None)
        cache.scenario_system_for(scenario)
        scenario.path_set.remove(1)
        fresh = cache.scenario_system_for(scenario)
        for _ in range(3):
            assert cache.scenario_system_for(scenario) is fresh
        assert cache.stats["scenario_stale_evict"] == 1

    def test_estimates_follow_the_churned_matrix(self):
        from repro.scenarios.simple_network import paper_fig1_scenario

        scenario = paper_fig1_scenario()
        cache = FactorizationCache(store=None)
        cache.scenario_system_for(scenario)
        scenario.path_set.remove(0)
        system = cache.scenario_system_for(scenario)
        reference = LinearSystem(scenario.path_set.routing_matrix())
        observed = np.arange(system.num_paths, dtype=float)
        assert np.abs(
            system.estimate(observed) - reference.estimate(observed)
        ).max() < 1e-8
