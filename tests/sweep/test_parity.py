"""Serial/parallel parity: workers must never change results.

``run_trials`` parity is covered in ``tests/scenarios/test_montecarlo.py``;
this module covers the shared chunk mapper it was refactored onto and the
sweep runner built on top of it, including resume byte-identity.
"""

import pytest

from repro.exceptions import ValidationError
from repro.scenarios.montecarlo import iter_map_chunks
from repro.sweep import SweepSpec, run_sweep


def _double_chunk(chunk):
    return [2 * value for value in chunk]


def grid_doc() -> dict:
    return {
        "format": "repro-sweep",
        "version": 1,
        "name": "parity",
        "seed": 7,
        "strategies": ["chosen-victim", "max-damage", "obfuscation"],
        "topologies": [{"kind": "fig1"}, {"kind": "grid", "rows": 3, "cols": 3}],
        "attacker_counts": [1, 2, 3],
    }


class TestIterMapChunks:
    def test_serial_equals_parallel_in_order(self):
        chunks = [[1, 2], [3], [4, 5, 6]]
        serial = list(iter_map_chunks(_double_chunk, chunks, workers=1))
        parallel = list(iter_map_chunks(_double_chunk, chunks, workers=3))
        assert serial == parallel == [[2, 4], [6], [8, 10, 12]]

    def test_workers_capped_by_chunk_count(self):
        assert list(iter_map_chunks(_double_chunk, [[9]], workers=8)) == [[18]]

    def test_bad_workers_rejected(self):
        with pytest.raises(ValidationError, match="workers"):
            list(iter_map_chunks(_double_chunk, [[1]], workers=0))

    def test_unpicklable_chunk_fn_rejected(self):
        with pytest.raises(ValidationError, match="picklable"):
            list(iter_map_chunks(lambda chunk: chunk, [[1], [2]], workers=2))


@pytest.mark.slow
class TestSweepParity:
    """The 18-point acceptance grid: 3 strategies x 2 topologies x 3 counts."""

    @pytest.fixture(scope="class")
    def spec(self):
        return SweepSpec.from_dict(grid_doc())

    @pytest.fixture(scope="class")
    def serial_bytes(self, spec, tmp_path_factory):
        out = tmp_path_factory.mktemp("parity") / "serial.jsonl"
        run_sweep(spec, results_path=out, workers=1)
        return out.read_bytes()

    def test_workers_byte_identical_to_serial(self, spec, serial_bytes, tmp_path):
        out = tmp_path / "par.jsonl"
        run_sweep(spec, results_path=out, workers=4)
        assert out.read_bytes() == serial_bytes

    def test_chunk_size_byte_identical(self, spec, serial_bytes, tmp_path):
        out = tmp_path / "chunked.jsonl"
        run_sweep(spec, results_path=out, workers=2, chunk_size=1)
        assert out.read_bytes() == serial_bytes

    def test_interrupted_resume_byte_identical(self, spec, serial_bytes, tmp_path):
        """Kill-and-resume equals one uninterrupted run, byte for byte."""
        out = tmp_path / "resumed.jsonl"
        run_sweep(spec, results_path=out, workers=1, max_points=7)
        assert len(out.read_text().splitlines()) == 1 + 7
        run_sweep(spec, results_path=out, workers=3, resume=True)
        assert out.read_bytes() == serial_bytes
