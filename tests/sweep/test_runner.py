"""Sweep execution, checkpointing, and resume semantics."""

import json

import pytest

from repro.exceptions import SerializationError
from repro.sweep import SweepSpec, aggregate_rows, load_results, run_grid_point, run_sweep
from repro.sweep.runner import _chunk_points, read_checkpoint


def small_doc(**overrides) -> dict:
    doc = {
        "format": "repro-sweep",
        "version": 1,
        "name": "runner-unit",
        "seed": 5,
        "strategies": ["chosen-victim", "naive"],
        "topologies": [{"kind": "fig1"}],
        "attacker_counts": [1, 2],
    }
    doc.update(overrides)
    return doc


@pytest.fixture()
def spec():
    return SweepSpec.from_dict(small_doc())


class TestRunSweep:
    def test_checkpoint_file_structure(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        summary = run_sweep(spec, results_path=out)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        header, points = lines[0], lines[1:]
        assert header["kind"] == "header"
        assert header["format"] == "repro-sweep-results"
        assert header["spec_digest"] == spec.digest
        assert header["points"] == spec.num_points() == len(points)
        assert all(p["kind"] == "point" for p in points)
        assert [p["index"] for p in points] == list(range(len(points)))
        assert summary["ran"] == len(points)
        assert summary["skipped"] == 0
        assert summary["remaining"] == 0

    def test_records_are_strict_json(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out)
        for line in out.read_text().splitlines():
            # bare Infinity/NaN tokens would make this raise
            json.loads(line, parse_constant=lambda token: pytest.fail(token))

    def test_existing_file_refused_without_resume(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out)
        before = out.read_bytes()
        with pytest.raises(SerializationError, match="already exists"):
            run_sweep(spec, results_path=out)
        assert out.read_bytes() == before

    def test_budget_then_resume_completes(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        partial = run_sweep(spec, results_path=out, max_points=1)
        assert partial["ran"] == 1
        assert partial["remaining"] == spec.num_points() - 1
        assert partial["budget_hit"] is True
        finish = run_sweep(spec, results_path=out, resume=True)
        assert finish["ran"] == spec.num_points() - 1
        assert finish["skipped"] == 1
        assert finish["remaining"] == 0

    def test_resume_with_zero_remaining_is_noop(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out)
        before = out.read_bytes()
        again = run_sweep(spec, results_path=out, resume=True)
        assert again["ran"] == 0
        assert again["skipped"] == spec.num_points()
        assert out.read_bytes() == before

    def test_degenerate_points_recorded_not_raised(self, tmp_path):
        # 50 attackers on the 8-node Fig. 1 graph: every node is malicious,
        # so chosen-victim has no candidate; the point must be recorded as
        # infeasible rather than aborting the sweep.
        spec = SweepSpec.from_dict(
            small_doc(strategies=["chosen-victim"], attacker_counts=[50])
        )
        summary = run_sweep(spec, results_path=tmp_path / "r.jsonl")
        (record,) = summary["points"]
        assert record["feasible"] is False
        assert record["damage"] == 0.0


class TestChunkPayloads:
    """Workers receive grid-point payloads — nobody re-expands the spec."""

    def test_chunks_never_cross_topology(self):
        spec = SweepSpec.from_dict(
            small_doc(
                topologies=[{"kind": "fig1"}, {"kind": "grid", "rows": 3, "cols": 3}]
            )
        )
        points = spec.expand()
        for chunk in _chunk_points(points, None):
            assert len({p.topology_index for p in chunk}) == 1
        # splitting preserves order and loses nothing
        split = _chunk_points(points, 1)
        assert [p.index for chunk in split for p in chunk] == [p.index for p in points]

    def test_spec_expanded_exactly_once_per_run(self, spec, tmp_path, monkeypatch):
        calls = []
        original = SweepSpec.expand

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(SweepSpec, "expand", counting)
        run_sweep(spec, results_path=tmp_path / "r.jsonl", workers=1)
        # the driver expands once to enumerate the grid; chunk execution
        # works off the shipped GridPoint payloads and never re-expands
        assert len(calls) == 1

    def test_parallel_checkpoint_byte_identical_to_serial(self, spec, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_sweep(spec, results_path=serial, workers=1)
        run_sweep(spec, results_path=parallel, workers=2, chunk_size=1)
        assert parallel.read_bytes() == serial.read_bytes()


class TestMaxVictims:
    def _seen_kwargs(self, monkeypatch, attack_overrides):
        import repro.attacks.obfuscation as obfuscation_module

        seen = {}
        real = obfuscation_module.ObfuscationAttack

        class Recording(real):
            def __init__(self, context, **kwargs):
                seen.update(kwargs)
                super().__init__(context, **kwargs)

        monkeypatch.setattr(obfuscation_module, "ObfuscationAttack", Recording)
        doc = small_doc(strategies=["obfuscation"], attacker_counts=[2])
        if attack_overrides:
            doc["attack"] = attack_overrides
        spec = SweepSpec.from_dict(doc)
        for point in spec.expand():
            run_grid_point(spec, point)
        return seen

    def test_window_pinned_to_min_when_absent(self, monkeypatch):
        seen = self._seen_kwargs(monkeypatch, None)
        assert seen["min_victims"] == seen["max_victims"] == 2

    def test_spec_range_passed_through(self, monkeypatch):
        seen = self._seen_kwargs(
            monkeypatch, {"min_victims": 1, "max_victims": 3}
        )
        assert seen["min_victims"] == 1 and seen["max_victims"] == 3


class TestCheckpointIntegrity:
    def test_corrupt_trailing_line_refused(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out)
        out.write_bytes(out.read_bytes() + b'{"kind": "point", "trunc')
        before = out.read_bytes()
        with pytest.raises(SerializationError, match="corrupt"):
            run_sweep(spec, results_path=out, resume=True)
        assert out.read_bytes() == before

    def test_garbage_header_refused(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        out.write_text('{"kind": "other"}\n')
        with pytest.raises(SerializationError, match="header"):
            run_sweep(spec, results_path=out, resume=True)

    def test_foreign_spec_refused(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out)
        other = SweepSpec.from_dict(small_doc(seed=6))
        with pytest.raises(SerializationError, match="different sweep spec"):
            run_sweep(other, results_path=out, resume=True)

    def test_unknown_point_digest_refused(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out, max_points=1)
        lines = out.read_text().splitlines()
        forged = json.loads(lines[1])
        forged["digest"] = "0" * 64
        forged["result"]["digest"] = "0" * 64
        out.write_text("\n".join([lines[0], json.dumps(forged)]) + "\n")
        with pytest.raises(SerializationError, match="matches no point"):
            read_checkpoint(out, spec)

    def test_empty_file_refused(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        out.write_text("")
        with pytest.raises(SerializationError, match="empty"):
            run_sweep(spec, results_path=out, resume=True)


class TestAggregation:
    def test_load_results_sorts_and_validates(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        summary = run_sweep(spec, results_path=out)
        header, points = load_results(out, spec=spec)
        assert header["spec_digest"] == spec.digest
        assert [p["index"] for p in points] == list(range(spec.num_points()))
        assert points == summary["points"]

    def test_duplicate_point_rejected(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        run_sweep(spec, results_path=out, max_points=1)
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines + [lines[1]]) + "\n")
        with pytest.raises(SerializationError, match="duplicate"):
            load_results(out)

    def test_aggregate_rows_groups_and_rates(self, spec, tmp_path):
        out = tmp_path / "r.jsonl"
        summary = run_sweep(spec, results_path=out)
        rows = aggregate_rows(summary["points"])
        assert [(r["topology"], r["strategy"]) for r in rows] == [
            ("fig1", "chosen-victim"),
            ("fig1", "naive"),
        ]
        for row in rows:
            assert row["points"] == 2
            assert 0.0 <= row["success_rate"] <= 1.0
            if row["feasible"] == 0:
                assert row["mean_damage"] is None
            else:
                assert row["mean_damage"] > 0

    def test_aggregate_empty(self):
        assert aggregate_rows([]) == []
