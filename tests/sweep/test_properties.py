"""Property-based invariants of the sweep engine and the attacks it runs.

Three families, per the paper's constraints:

- **Constraint 1** (eq. 1): any feasible manipulation is non-negative and
  supported only on paths the attackers can touch.
- **Band invariants**: thresholds are ordered (``b_l < b_u``), victims of
  a feasible chosen-victim attack are diagnosed abnormal (estimate above
  ``b_u``), and the attackers' own links stay out of the abnormal set.
- **Cache transparency**: a grid point run against a warm
  :class:`FactorizationCache` is bit-identical to a cold run — caching is
  a pure optimisation, never an observable.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import config

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.sweep import FactorizationCache, SweepSpec, run_grid_point

# Fig. 1 node labels (monitors included — the paper does not protect
# monitors from compromise).
FIG1_NODES = ["M1", "M2", "M3", "A", "B", "C", "D"]

attacker_sets = st.sets(st.sampled_from(FIG1_NODES), min_size=1, max_size=3).map(sorted)

common = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _feasible_outcome(scenario, attackers, strategy):
    context = scenario.attack_context(attackers)
    if strategy == "chosen-victim":
        controlled = context.controlled_links
        candidates = [
            link.index
            for link in scenario.topology.links()
            if link.index not in controlled
            and scenario.path_set.paths_containing_link(link.index)
        ]
        if not candidates:
            return context, None
        outcome = ChosenVictimAttack(context, [candidates[0]]).run()
    elif strategy == "max-damage":
        outcome = MaxDamageAttack(context).run()
    else:
        outcome = ObfuscationAttack(context, min_victims=1).run()
    return context, outcome


class TestConstraint1:
    @common
    @given(attackers=attacker_sets, strategy=st.sampled_from(
        ["chosen-victim", "max-damage", "obfuscation"]))
    def test_manipulation_supported_only_on_attacker_paths(
        self, fig1_scenario, attackers, strategy
    ):
        context, outcome = _feasible_outcome(fig1_scenario, attackers, strategy)
        if outcome is None or not outcome.feasible:
            return
        m = outcome.manipulation
        assert m is not None and m.shape == (context.num_paths,)
        assert np.all(m >= -1e-9)
        off_support = np.ones(context.num_paths, dtype=bool)
        off_support[list(context.support)] = False
        assert np.allclose(m[off_support], 0.0, atol=1e-9)


class TestBandInvariants:
    @common
    @given(attackers=attacker_sets)
    def test_victims_abnormal_and_attackers_clean(self, fig1_scenario, attackers):
        thresholds = fig1_scenario.thresholds
        assert thresholds.lower < thresholds.upper
        context, outcome = _feasible_outcome(fig1_scenario, attackers, "chosen-victim")
        if outcome is None or not outcome.feasible:
            return
        estimate = outcome.predicted_estimate
        for victim in outcome.victim_links:
            # the estimate lands in the claimed (abnormal) band ...
            assert estimate[victim] > thresholds.upper
            # ... and the diagnosis agrees
            assert victim in outcome.diagnosis.abnormal
        # scapegoating, not confession: controlled links stay unclassified
        # as abnormal (they must look normal to shift the blame)
        assert not (set(outcome.diagnosis.abnormal) & context.controlled_links)


class TestCacheTransparency:
    @common
    @given(
        seed=st.integers(min_value=0, max_value=50),
        num_attackers=st.integers(min_value=1, max_value=3),
        strategy=st.sampled_from(
            ["chosen-victim", "max-damage", "obfuscation", "naive"]
        ),
    )
    def test_cached_run_bit_identical_to_cold(self, seed, num_attackers, strategy):
        spec = SweepSpec.from_dict(
            {
                "format": "repro-sweep",
                "version": 1,
                "name": "prop",
                "seed": seed,
                "strategies": [strategy],
                "topologies": [{"kind": "fig1"}],
                "attacker_counts": [num_attackers],
            }
        )
        (point,) = spec.expand()
        cold = run_grid_point(spec, point)
        warm_cache = FactorizationCache()
        scenarios = {}
        run_grid_point(spec, point, cache=warm_cache, scenarios=scenarios)
        warm = run_grid_point(spec, point, cache=warm_cache, scenarios=scenarios)
        assert warm_cache.stats["system_hit"] > 0
        # dict equality is exact: floats must match bit for bit
        assert warm == cold

    @pytest.mark.skipif(
        config.get_str("REPRO_BACKEND").lower() == "sparse",
        reason="REPRO_BACKEND=sparse: no dense factors to persist",
    )
    @common
    @given(
        seed=st.integers(min_value=0, max_value=50),
        num_attackers=st.integers(min_value=1, max_value=3),
        strategy=st.sampled_from(
            ["chosen-victim", "max-damage", "obfuscation", "naive"]
        ),
    )
    def test_store_backed_run_bit_identical_to_cold(
        self, tmp_path_factory, seed, num_attackers, strategy
    ):
        """Disk-store warm starts are as invisible as in-memory hits."""
        from repro.sweep import FactorizationStore

        spec = SweepSpec.from_dict(
            {
                "format": "repro-sweep",
                "version": 1,
                "name": "prop-store",
                "seed": seed,
                "strategies": [strategy],
                "topologies": [{"kind": "fig1"}],
                "attacker_counts": [num_attackers],
            }
        )
        (point,) = spec.expand()
        cold = run_grid_point(spec, point, cache=FactorizationCache(store=None))
        root = tmp_path_factory.mktemp("store")
        seeding = FactorizationCache(store=FactorizationStore(root))
        seeded = run_grid_point(spec, point, cache=seeding, scenarios={})
        # a second "process": fresh cache, fresh store handle, same root
        warm = FactorizationCache(store=FactorizationStore(root))
        imported = run_grid_point(spec, point, cache=warm, scenarios={})
        assert warm.stats["store_import"] == 1
        assert seeded == cold and imported == cold
