"""Tests for the packet-level network simulator."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement.simulator.adversary import PathManipulationAgent
from repro.measurement.simulator.network_sim import NetworkSimulator
from repro.routing.paths import PathSet
from repro.topology.generators.simple import paper_example_network


@pytest.fixture()
def topo():
    return paper_example_network()


@pytest.fixture()
def paths(topo):
    return PathSet.from_node_sequences(
        topo, [["M1", "A", "C", "M2"], ["M3", "D", "M2"], ["M1", "A", "B", "M3"]]
    )


@pytest.fixture()
def delays(topo):
    return np.arange(1.0, topo.num_links + 1.0)  # link j has delay j+1


class TestHonestMeasurement:
    def test_end_to_end_equals_link_sums(self, topo, paths, delays):
        sim = NetworkSimulator(topo, delays)
        record = sim.run_measurement(paths, rng=0)
        y = record.path_delay_vector()
        matrix = paths.routing_matrix()
        assert np.allclose(y, matrix @ delays)

    def test_multiple_probes_identical_without_jitter(self, topo, paths, delays):
        sim = NetworkSimulator(topo, delays)
        record = sim.run_measurement(paths, probes_per_path=5, rng=0)
        for samples in record.delays:
            assert len(set(round(s, 9) for s in samples)) == 1

    def test_all_probes_delivered(self, topo, paths, delays):
        sim = NetworkSimulator(topo, delays)
        record = sim.run_measurement(paths, probes_per_path=3, rng=0)
        assert record.sent == [3, 3, 3]
        assert record.delivered == [3, 3, 3]
        assert np.all(record.delivery_ratio_vector() == 1.0)

    def test_jitter_increases_delay(self, topo, paths, delays):
        base = NetworkSimulator(topo, delays)
        jittered = NetworkSimulator(topo, delays, jitter=lambda rng: 0.5)
        y0 = base.run_measurement(paths, rng=0).path_delay_vector()
        y1 = jittered.run_measurement(paths, rng=0).path_delay_vector()
        hops = np.array([p.num_hops for p in paths])
        assert np.allclose(y1 - y0, 0.5 * hops)

    def test_negative_jitter_rejected(self, topo, paths, delays):
        sim = NetworkSimulator(topo, delays, jitter=lambda rng: -1.0)
        with pytest.raises(MeasurementError, match="jitter"):
            sim.run_measurement(paths, rng=0)


class TestAdversarialMeasurement:
    def test_interior_attacker_delays_only_targeted_path(self, topo, paths, delays):
        agent = PathManipulationAgent(node="A")
        agent.set_action(0, extra_delay=100.0)
        sim = NetworkSimulator(topo, delays, agents={"A": agent})
        honest = NetworkSimulator(topo, delays).run_measurement(paths, rng=0)
        attacked = sim.run_measurement(paths, rng=0)
        diff = attacked.path_delay_vector() - honest.path_delay_vector()
        assert np.allclose(diff, [100.0, 0.0, 0.0])

    def test_malicious_destination_monitor_reports_late(self, topo, paths, delays):
        agent = PathManipulationAgent(node="M2")
        agent.set_action(0, extra_delay=250.0)  # M2 is path 0's destination
        sim = NetworkSimulator(topo, delays, agents={"M2": agent})
        honest = NetworkSimulator(topo, delays).run_measurement(paths, rng=0)
        attacked = sim.run_measurement(paths, rng=0)
        diff = attacked.path_delay_vector() - honest.path_delay_vector()
        assert diff[0] == pytest.approx(250.0)

    def test_drops_reduce_delivery_ratio(self, topo, paths, delays):
        agent = PathManipulationAgent(node="A")
        agent.set_action(0, drop_probability=1.0)
        sim = NetworkSimulator(topo, delays, agents={"A": agent})
        record = sim.run_measurement(paths, probes_per_path=4, rng=0)
        assert record.delivery_ratio_vector()[0] == 0.0
        assert record.path_delay_vector()[0] == float("inf")
        assert record.delivery_ratio_vector()[1] == 1.0

    def test_partial_drops(self, topo, paths, delays):
        agent = PathManipulationAgent(node="A")
        agent.set_action(0, drop_probability=0.5)
        sim = NetworkSimulator(topo, delays, agents={"A": agent})
        record = sim.run_measurement(paths, probes_per_path=400, rng=2)
        ratio = record.delivery_ratio_vector()[0]
        assert 0.4 < ratio < 0.6

    def test_attacker_on_other_paths_cooperates(self, topo, paths, delays):
        """Agent at B only affects path 2 (M1-A-B-M3), never paths 0-1."""
        agent = PathManipulationAgent(node="B")
        agent.set_action(2, extra_delay=77.0)
        sim = NetworkSimulator(topo, delays, agents={"B": agent})
        honest = NetworkSimulator(topo, delays).run_measurement(paths, rng=0)
        attacked = sim.run_measurement(paths, rng=0)
        diff = attacked.path_delay_vector() - honest.path_delay_vector()
        assert np.allclose(diff, [0.0, 0.0, 77.0])


class TestValidation:
    def test_agent_node_must_exist(self, topo, delays):
        agent = PathManipulationAgent(node="ghost")
        with pytest.raises(MeasurementError):
            NetworkSimulator(topo, delays, agents={"ghost": agent})

    def test_agent_node_mismatch(self, topo, delays):
        agent = PathManipulationAgent(node="B")
        with pytest.raises(MeasurementError, match="different node"):
            NetworkSimulator(topo, delays, agents={"A": agent})

    def test_delay_vector_length(self, topo):
        with pytest.raises(Exception):
            NetworkSimulator(topo, np.ones(3))

    def test_foreign_path_set_rejected(self, topo, delays):
        other = paper_example_network()
        foreign = PathSet.from_node_sequences(other, [["M3", "D", "M2"]])
        sim = NetworkSimulator(topo, delays)
        with pytest.raises(MeasurementError, match="different topology"):
            sim.run_measurement(foreign)

    def test_invalid_probe_args(self, topo, paths, delays):
        sim = NetworkSimulator(topo, delays)
        with pytest.raises(MeasurementError):
            sim.run_measurement(paths, probes_per_path=0)
        with pytest.raises(MeasurementError):
            sim.run_measurement(paths, probe_spacing=-1.0)
