"""Tests for the discrete-event queue."""

import pytest

from repro.measurement.simulator.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.run_until_empty()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1.0, lambda l=label: fired.append(l))
        queue.run_until_empty()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        assert queue.now == 0.0
        queue.run_next()
        assert queue.now == 5.0

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def first():
            fired.append("first")
            queue.schedule(queue.now + 1.0, lambda: fired.append("second"))

        queue.schedule(1.0, first)
        count = queue.run_until_empty()
        assert fired == ["first", "second"]
        assert count == 2

    def test_scheduling_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run_next()
        with pytest.raises(ValueError):
            queue.schedule(4.0, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().run_next()

    def test_max_events_guard(self):
        queue = EventQueue()

        def rearm():
            queue.schedule(queue.now + 1.0, rearm)

        queue.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="runaway"):
            queue.run_until_empty(max_events=10)

    def test_len_and_is_empty(self):
        queue = EventQueue()
        assert queue.is_empty()
        queue.schedule(1.0, lambda: None)
        assert len(queue) == 1
        assert not queue.is_empty()
