"""Tests for loss-domain measurement helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MeasurementError
from repro.measurement.loss import (
    delivery_to_log_measurements,
    drop_probabilities_to_manipulation,
    log_measurements_to_delivery,
    loss_thresholds,
    manipulation_to_drop_probabilities,
)


class TestDeliveryConversions:
    def test_perfect_path_maps_to_zero(self):
        assert delivery_to_log_measurements(np.array([1.0]))[0] == 0.0

    def test_round_trip(self):
        ratios = np.array([1.0, 0.9, 0.5, 0.01])
        back = log_measurements_to_delivery(delivery_to_log_measurements(ratios))
        assert np.allclose(back, ratios)

    def test_dead_path_floored_not_infinite(self):
        y = delivery_to_log_measurements(np.array([0.0]), floor=1e-6)
        assert np.isfinite(y[0])
        assert y[0] == pytest.approx(-np.log(1e-6))

    def test_domain_enforced(self):
        with pytest.raises(MeasurementError):
            delivery_to_log_measurements(np.array([1.5]))
        with pytest.raises(MeasurementError):
            delivery_to_log_measurements(np.array([-0.1]))
        with pytest.raises(MeasurementError):
            delivery_to_log_measurements(np.array([0.5]), floor=0.0)

    def test_negative_log_metric_rejected(self):
        with pytest.raises(MeasurementError):
            log_measurements_to_delivery(np.array([-1.0]))


class TestManipulationConversions:
    def test_zero_manipulation_drops_nothing(self):
        assert manipulation_to_drop_probabilities(np.array([0.0]))[0] == 0.0

    def test_equivalence_with_expected_delivery(self):
        """Dropping with prob 1-exp(-m) multiplies delivery by exp(-m)."""
        m = np.array([0.3, 1.0, 3.0])
        p = manipulation_to_drop_probabilities(m)
        assert np.allclose(1.0 - p, np.exp(-m))

    def test_round_trip(self):
        m = np.array([0.0, 0.5, 2.0])
        back = drop_probabilities_to_manipulation(
            manipulation_to_drop_probabilities(m)
        )
        assert np.allclose(back, m)

    def test_negative_manipulation_rejected(self):
        with pytest.raises(MeasurementError):
            manipulation_to_drop_probabilities(np.array([-0.5]))

    def test_certain_drop_rejected_in_inverse(self):
        with pytest.raises(MeasurementError):
            drop_probabilities_to_manipulation(np.array([1.0]))


class TestLossThresholds:
    def test_values(self):
        thresholds = loss_thresholds(0.95, 0.5)
        assert thresholds.lower == pytest.approx(-np.log(0.95))
        assert thresholds.upper == pytest.approx(-np.log(0.5))

    def test_classification_in_delivery_terms(self):
        thresholds = loss_thresholds(0.95, 0.5)
        assert str(thresholds.classify(-np.log(0.99))) == "normal"
        assert str(thresholds.classify(-np.log(0.8))) == "uncertain"
        assert str(thresholds.classify(-np.log(0.2))) == "abnormal"

    def test_domain_enforced(self):
        with pytest.raises(MeasurementError):
            loss_thresholds(0.5, 0.9)  # inverted
        with pytest.raises(MeasurementError):
            loss_thresholds(1.5, 0.5)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=10))
def test_manipulation_drop_round_trip_property(values):
    m = np.asarray(values)
    p = manipulation_to_drop_probabilities(m)
    assert np.all(p >= 0.0) and np.all(p < 1.0)
    assert np.allclose(drop_probabilities_to_manipulation(p), m, atol=1e-9)
