"""Tests for the analytic measurement engine."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError, ValidationError
from repro.measurement.engine import AnalyticMeasurementEngine
from repro.measurement.noise import GaussianNoise
from repro.routing.paths import PathSet
from repro.topology.generators.simple import paper_example_network


@pytest.fixture()
def engine():
    topo = paper_example_network()
    ps = PathSet.from_node_sequences(
        topo, [["M1", "A", "C", "M2"], ["M3", "D", "M2"], ["M1", "A", "B", "M3"]]
    )
    return AnalyticMeasurementEngine(ps)


class TestMeasure:
    def test_noiseless_is_exact_row_sum(self, engine):
        x = np.arange(10, dtype=float)
        y = engine.measure(x)
        assert y[0] == x[0] + x[3] + x[7]
        assert y[1] == x[8] + x[9]
        assert y[2] == x[0] + x[1] + x[2]

    def test_manipulation_added(self, engine):
        x = np.ones(10)
        m = np.array([5.0, 0.0, 2.0])
        assert np.array_equal(engine.measure(x, manipulation=m), engine.measure(x) + m)

    def test_noise_model_applied(self):
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        engine = AnalyticMeasurementEngine(ps, noise_model=GaussianNoise(1.0))
        x = np.ones(10)
        draws = np.array([float(engine.measure(x, rng=s)[0]) for s in range(200)])
        assert draws.std() > 0.5
        assert abs(draws.mean() - 2.0) < 0.3

    def test_probe_averaging_reduces_noise(self):
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        engine = AnalyticMeasurementEngine(ps, noise_model=GaussianNoise(4.0))
        x = np.ones(10)
        single = np.array([float(engine.measure(x, rng=s)[0]) for s in range(200)])
        averaged = np.array(
            [float(engine.measure(x, num_probes=16, rng=s)[0]) for s in range(200)]
        )
        assert averaged.std() < single.std() / 2

    def test_wrong_metric_length(self, engine):
        with pytest.raises(ValidationError):
            engine.measure(np.ones(3))

    def test_wrong_manipulation_length(self, engine):
        with pytest.raises(ValidationError):
            engine.measure(np.ones(10), manipulation=np.ones(5))

    def test_invalid_num_probes(self, engine):
        with pytest.raises(MeasurementError):
            engine.measure(np.ones(10), num_probes=0)

    def test_routing_matrix_copy_is_isolated(self, engine):
        matrix = engine.routing_matrix
        matrix[0, 0] = 99.0
        assert engine.routing_matrix[0, 0] != 99.0

    def test_deterministic_with_seed(self):
        topo = paper_example_network()
        ps = PathSet.from_node_sequences(topo, [["M3", "D", "M2"]])
        engine = AnalyticMeasurementEngine(ps, noise_model=GaussianNoise(1.0))
        x = np.ones(10)
        assert np.array_equal(engine.measure(x, rng=7), engine.measure(x, rng=7))
