"""Tests for MeasurementRecord aggregation."""

import numpy as np

from repro.measurement.simulator.network_sim import MeasurementRecord


class TestMeasurementRecord:
    def test_initial_state(self):
        record = MeasurementRecord(num_paths=3)
        assert record.sent == [0, 0, 0]
        assert record.delivered == [0, 0, 0]
        assert record.delays == [[], [], []]

    def test_mean_delay_per_path(self):
        record = MeasurementRecord(num_paths=2)
        for delay in (10.0, 20.0, 30.0):
            record.record_sent(0)
            record.record_delivery(0, delay)
        record.record_sent(1)
        record.record_delivery(1, 5.0)
        y = record.path_delay_vector()
        assert y[0] == 20.0
        assert y[1] == 5.0

    def test_dead_path_is_inf(self):
        record = MeasurementRecord(num_paths=2)
        record.record_sent(0)  # sent but never delivered
        record.record_sent(1)
        record.record_delivery(1, 7.0)
        y = record.path_delay_vector()
        assert y[0] == float("inf")
        assert y[1] == 7.0

    def test_delivery_ratio(self):
        record = MeasurementRecord(num_paths=2)
        for _ in range(4):
            record.record_sent(0)
        record.record_delivery(0, 1.0)
        ratios = record.delivery_ratio_vector()
        assert ratios[0] == 0.25
        assert ratios[1] == 1.0  # unsent path defaults to 1.0

    def test_vectors_are_fresh_arrays(self):
        record = MeasurementRecord(num_paths=1)
        record.record_sent(0)
        record.record_delivery(0, 3.0)
        first = record.path_delay_vector()
        first[0] = 999.0
        assert record.path_delay_vector()[0] == 3.0
        assert isinstance(record.delivery_ratio_vector(), np.ndarray)
