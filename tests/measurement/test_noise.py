"""Tests for noise models."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.noise import GaussianNoise, NoNoise, UniformNoise


class TestNoNoise:
    def test_always_zero(self):
        rng = np.random.default_rng(0)
        assert np.array_equal(NoNoise()(rng, 5), np.zeros(5))


class TestGaussianNoise:
    def test_shape_and_scale(self):
        rng = np.random.default_rng(0)
        draw = GaussianNoise(sigma=2.0)(rng, 10000)
        assert draw.shape == (10000,)
        assert abs(float(draw.std()) - 2.0) < 0.1
        assert abs(float(draw.mean())) < 0.1

    def test_zero_sigma(self):
        rng = np.random.default_rng(0)
        assert np.array_equal(GaussianNoise(sigma=0.0)(rng, 4), np.zeros(4))

    def test_truncation(self):
        rng = np.random.default_rng(0)
        draw = GaussianNoise(sigma=10.0, truncate_at=1.0)(rng, 1000)
        assert float(draw.min()) >= -1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            GaussianNoise(sigma=-1.0)


class TestUniformNoise:
    def test_range(self):
        rng = np.random.default_rng(1)
        draw = UniformNoise(0.5, 2.0)(rng, 1000)
        assert float(draw.min()) >= 0.5
        assert float(draw.max()) <= 2.0

    def test_invalid_range(self):
        with pytest.raises(ValidationError):
            UniformNoise(2.0, 1.0)
