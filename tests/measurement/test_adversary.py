"""Tests for the adversary agent model."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.simulator.adversary import PathAction, PathManipulationAgent


class TestPathAction:
    def test_defaults_are_benign(self):
        action = PathAction()
        assert action.extra_delay == 0.0
        assert action.drop_probability == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            PathAction(extra_delay=-1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_drop_probability_bounds(self, bad):
        with pytest.raises(ValidationError):
            PathAction(drop_probability=bad)


class TestAgent:
    def test_untargeted_path_passes_clean(self):
        agent = PathManipulationAgent(node="B")
        rng = np.random.default_rng(0)
        assert agent.on_probe(3, rng) == (0.0, False)

    def test_delay_applied_to_targeted_path(self):
        agent = PathManipulationAgent(node="B")
        agent.set_action(2, extra_delay=500.0)
        rng = np.random.default_rng(0)
        assert agent.on_probe(2, rng) == (500.0, False)

    def test_certain_drop(self):
        agent = PathManipulationAgent(node="B")
        agent.set_action(1, drop_probability=1.0)
        rng = np.random.default_rng(0)
        _, dropped = agent.on_probe(1, rng)
        assert dropped

    def test_probabilistic_drop_rate(self):
        agent = PathManipulationAgent(node="B")
        agent.set_action(0, drop_probability=0.3)
        rng = np.random.default_rng(1)
        drops = sum(agent.on_probe(0, rng)[1] for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_set_action_replaces(self):
        agent = PathManipulationAgent(node="B")
        agent.set_action(0, extra_delay=10.0)
        agent.set_action(0, extra_delay=20.0)
        assert agent.total_planned_delay() == 20.0

    def test_total_planned_delay_sums_paths(self):
        agent = PathManipulationAgent(node="B")
        agent.set_action(0, extra_delay=10.0)
        agent.set_action(1, extra_delay=30.0)
        assert agent.total_planned_delay() == 40.0
