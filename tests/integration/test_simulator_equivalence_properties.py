"""Property: the packet simulator realises the analytic model exactly.

For random small scenarios, random attacker sets, and random feasible
attacks, compiling the LP solution to per-node agents and running the
discrete-event simulator must reproduce ``y' = R x* + m`` to floating
point — the two measurement backends are interchangeable by construction,
and this is the property that licenses using the fast analytic engine in
all Monte-Carlo experiments.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.planner import compile_attack_plan
from repro.measurement.simulator.network_sim import NetworkSimulator
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.routing.selection import select_identifiable_paths
from repro.scenarios.scenario import Scenario
from repro.topology.generators.simple import grid_topology, ladder_topology


def _scenario(kind: str, seed: int) -> Scenario:
    topology = grid_topology(3, 3) if kind == "grid" else ladder_topology(4)
    rng = np.random.default_rng(seed)
    nodes = topology.nodes()
    order = list(range(len(nodes)))
    rng.shuffle(order)
    monitors = [nodes[i] for i in order[: max(4, len(nodes) // 2)]]
    path_set = select_identifiable_paths(topology, monitors, redundancy=3, rng=rng)
    return Scenario(
        topology=topology,
        monitors=tuple(monitors),
        path_set=path_set,
        true_metrics=uniform_delay_metrics(topology, rng=rng),
        name=f"{kind}-{seed}",
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["grid", "ladder"]),
    seed=st.integers(0, 5000),
    attacker_index=st.integers(0, 50),
)
def test_des_reproduces_analytic_attack_measurements(kind, seed, attacker_index):
    scenario = _scenario(kind, seed)
    nodes = scenario.topology.nodes()
    attacker = nodes[attacker_index % len(nodes)]
    context = scenario.attack_context([attacker])
    candidates = [
        j
        for j in range(context.num_links)
        if j not in context.controlled_links
        and scenario.path_set.paths_containing_link(j)
    ]
    assume(candidates)
    outcome = ChosenVictimAttack(context, [candidates[0]]).run()
    assume(outcome.feasible)
    plan = compile_attack_plan(
        scenario.path_set, [attacker], outcome.manipulation, cap=scenario.cap
    )
    simulator = NetworkSimulator(
        scenario.topology, scenario.true_metrics, agents=plan.agents
    )
    record = simulator.run_measurement(scenario.path_set, probes_per_path=2, rng=0)
    assert np.allclose(
        record.path_delay_vector(), outcome.observed_measurements, atol=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(kind=st.sampled_from(["grid", "ladder"]), seed=st.integers(0, 5000))
def test_des_reproduces_honest_measurements(kind, seed):
    scenario = _scenario(kind, seed)
    simulator = NetworkSimulator(scenario.topology, scenario.true_metrics)
    record = simulator.run_measurement(scenario.path_set, rng=0)
    assert np.allclose(
        record.path_delay_vector(), scenario.honest_measurements(), atol=1e-9
    )
