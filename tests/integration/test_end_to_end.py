"""End-to-end integration: LP plan -> packet simulator -> tomography -> audit.

These tests exercise the whole stack the way the examples do, asserting the
two measurement backends (analytic model and discrete-event simulator) drive
tomography to identical conclusions and that the audit pipeline's verdicts
match the attack's stealth level.
"""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.naive import NaiveDelayAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.attacks.planner import compile_attack_plan
from repro.detection.auditor import TomographyAuditor
from repro.metrics.states import LinkState
from repro.tomography.estimators import LeastSquaresEstimator
from repro.tomography.diagnosis import diagnose


def _simulate_attack(scenario, attackers, outcome, probes=3, rng=0):
    plan = compile_attack_plan(
        scenario.path_set, attackers, outcome.manipulation, cap=scenario.cap
    )
    sim = scenario.simulator(agents=plan.agents)
    record = sim.run_measurement(scenario.path_set, probes_per_path=probes, rng=rng)
    return record.path_delay_vector()


class TestSimulatorMatchesAnalyticModel:
    @pytest.mark.parametrize("victim", [0, 9])
    def test_chosen_victim(self, fig1_scenario, victim):
        context = fig1_scenario.attack_context(["B", "C"])
        mode = "exclusive" if victim == 9 else "paper"
        outcome = ChosenVictimAttack(context, [victim], mode=mode).run()
        assert outcome.feasible
        y_sim = _simulate_attack(fig1_scenario, ["B", "C"], outcome)
        assert np.allclose(y_sim, outcome.observed_measurements, atol=1e-9)

    def test_obfuscation(self, fig1_scenario):
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = ObfuscationAttack(context, min_victims=1).run()
        assert outcome.feasible
        y_sim = _simulate_attack(fig1_scenario, ["B", "C"], outcome)
        assert np.allclose(y_sim, outcome.observed_measurements, atol=1e-9)

    def test_naive(self, fig1_scenario):
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = NaiveDelayAttack(context, per_path_delay=800.0).run()
        y_sim = _simulate_attack(fig1_scenario, ["B", "C"], outcome)
        assert np.allclose(y_sim, outcome.observed_measurements, atol=1e-9)


class TestOperatorViewFromSimulatedPackets:
    def test_scapegoat_blamed_from_packets(self, fig1_scenario):
        """The operator, given only simulated packet timings, blames the
        scapegoat — the paper's core claim reproduced end to end."""
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, [9], mode="exclusive").run()
        y_sim = _simulate_attack(fig1_scenario, ["B", "C"], outcome)
        estimator = LeastSquaresEstimator(fig1_scenario.path_set.routing_matrix())
        report = diagnose(estimator.estimate(y_sim), fig1_scenario.thresholds)
        assert report.abnormal == (9,)
        for j in context.controlled_links:
            assert report.state_of(j) is LinkState.NORMAL

    def test_audit_catches_imperfect_cut_from_packets(self, fig1_scenario):
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, [9], mode="exclusive").run()
        y_sim = _simulate_attack(fig1_scenario, ["B", "C"], outcome)
        auditor = TomographyAuditor(fig1_scenario.path_set)
        assert not auditor.audit(y_sim).trustworthy

    def test_audit_fooled_by_stealthy_perfect_cut_from_packets(self, fig1_scenario):
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, [0], stealthy=True).run()
        y_sim = _simulate_attack(fig1_scenario, ["B", "C"], outcome)
        auditor = TomographyAuditor(fig1_scenario.path_set)
        report = auditor.audit(y_sim)
        assert report.trustworthy
        assert 0 in report.diagnosis.abnormal


class TestLadderScenario:
    def test_max_damage_full_pipeline(self, ladder_scenario):
        attackers = [("top", 1)]
        context = ladder_scenario.attack_context(attackers)
        outcome = MaxDamageAttack(context).run()
        if not outcome.feasible:
            pytest.skip("no feasible victim on this ladder draw")
        y_sim = _simulate_attack(ladder_scenario, attackers, outcome)
        assert np.allclose(y_sim, outcome.observed_measurements, atol=1e-9)
        estimator = LeastSquaresEstimator(
            ladder_scenario.path_set.routing_matrix(), require_full_rank=False
        )
        report = diagnose(estimator.estimate(y_sim), ladder_scenario.thresholds)
        assert set(outcome.victim_links) <= set(report.abnormal)


class TestSmallIspScenario:
    def test_single_attacker_obfuscation_pipeline(self, small_isp_scenario):
        nodes = small_isp_scenario.topology.nodes()
        attacker = next(n for n in nodes if str(n).startswith("bb"))
        context = small_isp_scenario.attack_context([attacker])
        outcome = ObfuscationAttack(context, min_victims=1).run()
        if not outcome.feasible:
            pytest.skip("no obfuscatable victim for this attacker")
        y_sim = _simulate_attack(small_isp_scenario, [attacker], outcome)
        assert np.allclose(y_sim, outcome.observed_measurements, atol=1e-9)
