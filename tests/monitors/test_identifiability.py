"""Tests for the placement report."""

from repro.monitors.identifiability import placement_report
from repro.monitors.placement import incremental_identifiable_placement
from repro.topology.generators.simple import paper_example_network


class TestPlacementReport:
    def test_keys_and_consistency(self):
        topo = paper_example_network()
        placement = incremental_identifiable_placement(topo, rng=0)
        report = placement_report(placement)
        assert set(report) == {
            "monitors",
            "num_paths",
            "rank",
            "num_links",
            "fully_identifiable",
            "redundancy",
            "coverage",
            "max_presence_ratio",
        }
        assert report["num_links"] == topo.num_links
        assert report["rank"] <= report["num_paths"]
        assert report["redundancy"] == report["num_paths"] - report["rank"]
        assert 0.0 <= report["coverage"] <= 1.0
        assert 0.0 <= report["max_presence_ratio"] <= 1.0

    def test_full_identifiability_flag_matches_coverage(self):
        topo = paper_example_network()
        placement = incremental_identifiable_placement(topo, rng=1)
        report = placement_report(placement)
        assert report["fully_identifiable"] == (report["coverage"] == 1.0)
