"""Tests for monitor placement strategies."""

import pytest

from repro.exceptions import MonitorPlacementError, ValidationError
from repro.monitors.placement import (
    incremental_identifiable_placement,
    max_node_presence_ratio,
    random_monitor_placement,
    security_aware_placement,
)
from repro.routing.paths import PathSet
from repro.topology.generators.simple import (
    clique_topology,
    grid_topology,
    paper_example_network,
)


class TestRandomPlacement:
    def test_count_and_distinctness(self):
        topo = grid_topology(4, 4)
        monitors = random_monitor_placement(topo, 5, rng=0)
        assert len(monitors) == 5
        assert len(set(monitors)) == 5
        assert all(topo.has_node(m) for m in monitors)

    def test_deterministic(self):
        topo = grid_topology(4, 4)
        assert random_monitor_placement(topo, 4, rng=7) == random_monitor_placement(
            topo, 4, rng=7
        )

    def test_too_many_monitors(self):
        with pytest.raises(MonitorPlacementError):
            random_monitor_placement(grid_topology(2, 2), 9, rng=0)

    def test_too_few_monitors(self):
        with pytest.raises(ValidationError):
            random_monitor_placement(grid_topology(2, 2), 1, rng=0)


class TestIncrementalPlacement:
    def test_reaches_full_identifiability_on_clique(self):
        topo = clique_topology(5)
        result = incremental_identifiable_placement(topo, rng=1)
        assert result.fully_identifiable
        assert result.identified_rank == topo.num_links

    def test_paper_network(self):
        topo = paper_example_network()
        result = incremental_identifiable_placement(topo, rng=2)
        assert result.identified_rank == topo.num_links

    def test_monitor_growth_bounded(self):
        topo = grid_topology(3, 3)
        result = incremental_identifiable_placement(topo, max_monitors=4, rng=3)
        assert len(result.monitors) <= 4

    def test_partial_rank_fraction(self):
        topo = grid_topology(3, 3)
        result = incremental_identifiable_placement(
            topo, min_rank_fraction=0.5, rng=3
        )
        assert result.identified_rank >= 0.5 * topo.num_links

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            incremental_identifiable_placement(grid_topology(2, 2), min_rank_fraction=0.0)

    def test_max_monitors_exceeds_nodes(self):
        with pytest.raises(MonitorPlacementError):
            incremental_identifiable_placement(grid_topology(2, 2), max_monitors=10)


class TestPresenceRatio:
    def test_excluded_nodes_skipped(self, fig1_scenario):
        ps = fig1_scenario.path_set
        with_monitors = max_node_presence_ratio(ps)
        without = max_node_presence_ratio(ps, exclude={"M1", "M2", "M3"})
        assert 0.0 < without <= with_monitors <= 1.0

    def test_empty_path_set(self):
        topo = paper_example_network()
        assert max_node_presence_ratio(PathSet(topo)) == 0.0


class TestSecurityAwarePlacement:
    def test_no_worse_than_single_sample(self):
        topo = paper_example_network()
        single = incremental_identifiable_placement(topo, rng=11)
        best = security_aware_placement(topo, candidates=6, rng=11)
        ratio_single = max_node_presence_ratio(
            single.path_set, exclude=set(single.monitors)
        )
        ratio_best = max_node_presence_ratio(best.path_set, exclude=set(best.monitors))
        assert best.identified_rank >= single.identified_rank
        if best.identified_rank == single.identified_rank:
            assert ratio_best <= ratio_single + 1e-9

    def test_candidates_validation(self):
        with pytest.raises(ValidationError):
            security_aware_placement(paper_example_network(), candidates=0)
