"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack", "chosen-victim"])
        assert args.attackers == ["B", "C"]
        assert args.alpha == 200.0
        assert not args.stealthy


class TestInfo:
    def test_prints_version_and_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "repro.attacks" in out


class TestTopology:
    def test_fig1_summary(self, capsys):
        assert main(["topology", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "7" in out

    def test_edge_list_output(self, capsys):
        assert main(["topology", "fig1", "--edges"]) == 0
        out = capsys.readouterr().out
        assert "M1 A" in out

    def test_tuple_labels_fall_back_to_json(self, capsys):
        assert main(["topology", "fattree", "--edges"]) == 0
        out = capsys.readouterr().out
        assert "repro-topology" in out

    def test_rgg_with_options(self, capsys):
        assert main(["topology", "rgg", "--nodes", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "connected" in out


class TestCaseStudies:
    @pytest.mark.parametrize("figure", ["fig4", "fig5", "fig6"])
    def test_figures_render(self, figure, capsys):
        assert main(["case-study", figure]) == 0
        out = capsys.readouterr().out
        assert "damage" in out

    def test_naive(self, capsys):
        assert main(["case-study", "naive"]) == 0
        out = capsys.readouterr().out
        assert "attacker-controlled" in out


class TestAttack:
    def test_chosen_victim_detected(self, capsys):
        assert main(["attack", "chosen-victim", "--victims", "9"]) == 0
        out = capsys.readouterr().out
        assert "victim" in out
        assert "DETECTED" in out

    def test_stealthy_perfect_cut_not_detected(self, capsys):
        assert main(["attack", "chosen-victim", "--victims", "0", "--stealthy"]) == 0
        out = capsys.readouterr().out
        assert "not detected" in out

    def test_infeasible_attack_exit_code(self, capsys):
        # Confined + stealthy on the imperfectly cut link 9 is infeasible.
        code = main(
            ["attack", "chosen-victim", "--victims", "9", "--stealthy", "--confined"]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_unknown_attacker_is_error(self, capsys):
        assert main(["attack", "naive", "--attackers", "ghost"]) == 1
        assert "error" in capsys.readouterr().err

    def test_frame_and_blur(self, capsys):
        assert main(["attack", "frame-and-blur", "--victims", "9"]) == 0
        out = capsys.readouterr().out
        assert "frame-and-blur" in out


class TestExperiments:
    def test_fig7_small(self, capsys):
        assert main(["experiment", "fig7", "--trials", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "presence-ratio" in out

    def test_fig8_small(self, capsys):
        assert main(["experiment", "fig8", "--trials", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "max-damage success" in out

    def test_fig9_small(self, capsys):
        assert main(["experiment", "fig9", "--trials", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "detection-ratio" in out


@pytest.fixture()
def scenario_file(tmp_path, fig1_scenario):
    from repro.scenarios.serialization import save_scenario

    path = tmp_path / "fig1.json"
    save_scenario(fig1_scenario, path)
    return path


class TestRun:
    def test_run_scenario_file(self, scenario_file, capsys):
        code = main(
            ["run", str(scenario_file), "--strategy", "max-damage",
             "--attackers", "B", "C"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max-damage" in out
        assert "consistency detector" in out

    def test_run_default_attacker_and_victim(self, scenario_file, capsys):
        assert main(["run", str(scenario_file), "--strategy", "naive"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_run_with_estimator_choice(self, scenario_file, capsys):
        code = main(
            ["run", str(scenario_file), "--strategy", "max-damage",
             "--attackers", "B", "C", "--estimator", "bayes-map"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bayes-map" in out
        assert "consistency detector" in out

    def test_run_with_unknown_estimator(self, scenario_file, capsys):
        assert main(
            ["run", str(scenario_file), "--estimator", "kalman"]
        ) == 1
        assert "unknown estimator" in capsys.readouterr().err

    def test_missing_scenario_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_attacker_label(self, scenario_file, capsys):
        assert main(["run", str(scenario_file), "--attackers", "ghost"]) == 1
        assert "error" in capsys.readouterr().err


class TestObs:
    def test_env_var_writes_log_and_manifest(
        self, scenario_file, tmp_path, capsys, monkeypatch
    ):
        log_path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_PATH", str(log_path))
        code = main(
            ["run", str(scenario_file), "--strategy", "max-damage",
             "--attackers", "B", "C"]
        )
        assert code == 0
        assert log_path.exists()
        manifest_path = log_path.with_suffix(".manifest.json")
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "run"
        assert manifest["exit_status"] == 0
        assert "topology" in manifest  # run attaches the scenario summary
        from repro.obs import summarize_run

        summary = summarize_run(log_path)
        assert summary["complete"]
        assert "cli" in summary["spans"]
        assert "cli_run" in summary["spans"]
        assert summary["counters"].get("lp_solve", 0) > 0

    def test_summarize_renders_log(self, tmp_path, capsys):
        from repro.obs import core as obs

        log_path = tmp_path / "run.jsonl"
        with obs.enabled(log_path, run_id="cli-test") as log:
            with log.span("work"):
                log.counter("steps", 2)
        assert main(["obs", "summarize", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "work" in out
        assert "steps" in out

    def test_summarize_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_summarize_corrupt_file_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["obs", "summarize", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestBenchEstimators:
    def test_writes_per_family_latency(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "estimators", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "estimators" in out
        doc = json.loads(
            (tmp_path / "benchmarks" / "results" / "BENCH_estimators.json").read_text()
        )
        payload = doc["benchmarks"]["estimators"]
        for label, system in payload["systems"].items():
            assert set(system["estimators"]) == {
                "bayes-map", "l1", "ls", "nnls", "ridge",
            }, label
            for family in system["estimators"].values():
                assert family["per_solve_us"] > 0.0
        # The zoo's default path must stay within noise of the raw kernel.
        for label, ratio in payload["ls_vs_kernel"].items():
            assert ratio < 2.0, (label, ratio)


class TestBenchTrajectory:
    def test_trajectory_appends_across_runs(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        for _ in range(2):
            assert main(["bench", "fig1", "--repeat", "1", "--trajectory"]) == 0
        out = capsys.readouterr().out
        assert "appended trajectory point" in out
        trajectory = tmp_path / "benchmarks" / "results" / "BENCH_trajectory.json"
        doc = json.loads(trajectory.read_text())
        assert len(doc["runs"]) == 2
        assert all(
            "wall_s" in r["benchmarks"]["fig1_pipeline"] for r in doc["runs"]
        )


class TestReproduce:
    def test_writes_all_case_studies(self, tmp_path, capsys):
        out_dir = tmp_path / "repro_out"
        assert main(["reproduce", "--out", str(out_dir)]) == 0
        written = {p.name for p in out_dir.iterdir()}
        assert {
            "fig4_chosen_victim.txt",
            "fig5_max_damage.txt",
            "fig6_obfuscation.txt",
            "naive_baseline.txt",
            "loss_chosen_victim.txt",
        } <= written
        fig4 = (out_dir / "fig4_chosen_victim.txt").read_text()
        assert "victim" in fig4
        assert "damage" in fig4


class TestBenchOnline:
    def test_online_target_dispatches_and_writes(self, tmp_path, capsys, monkeypatch):
        import repro.perf.bench as bench

        def fake_online(*, repeat):
            return {
                "bench": "online",
                "repeat": repeat,
                "wall_s": 0.25,
                "scales": {},
                "speedup": {"online_per_epoch": 9.0},
            }

        monkeypatch.setattr(bench, "online_benchmark", fake_online)
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "online", "--repeat", "2", "--trajectory"]) == 0
        doc = json.loads(
            (tmp_path / "benchmarks" / "results" / "BENCH_online.json").read_text()
        )
        assert doc["benchmarks"]["online"]["repeat"] == 2
        trajectory = json.loads(
            (tmp_path / "benchmarks" / "results" / "BENCH_trajectory.json").read_text()
        )
        point = trajectory["runs"][0]["benchmarks"]["online"]
        assert point["speedup"]["online_per_epoch"] == 9.0
