"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack", "chosen-victim"])
        assert args.attackers == ["B", "C"]
        assert args.alpha == 200.0
        assert not args.stealthy


class TestInfo:
    def test_prints_version_and_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "repro.attacks" in out


class TestTopology:
    def test_fig1_summary(self, capsys):
        assert main(["topology", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "7" in out

    def test_edge_list_output(self, capsys):
        assert main(["topology", "fig1", "--edges"]) == 0
        out = capsys.readouterr().out
        assert "M1 A" in out

    def test_tuple_labels_fall_back_to_json(self, capsys):
        assert main(["topology", "fattree", "--edges"]) == 0
        out = capsys.readouterr().out
        assert "repro-topology" in out

    def test_rgg_with_options(self, capsys):
        assert main(["topology", "rgg", "--nodes", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "connected" in out


class TestCaseStudies:
    @pytest.mark.parametrize("figure", ["fig4", "fig5", "fig6"])
    def test_figures_render(self, figure, capsys):
        assert main(["case-study", figure]) == 0
        out = capsys.readouterr().out
        assert "damage" in out

    def test_naive(self, capsys):
        assert main(["case-study", "naive"]) == 0
        out = capsys.readouterr().out
        assert "attacker-controlled" in out


class TestAttack:
    def test_chosen_victim_detected(self, capsys):
        assert main(["attack", "chosen-victim", "--victims", "9"]) == 0
        out = capsys.readouterr().out
        assert "victim" in out
        assert "DETECTED" in out

    def test_stealthy_perfect_cut_not_detected(self, capsys):
        assert main(["attack", "chosen-victim", "--victims", "0", "--stealthy"]) == 0
        out = capsys.readouterr().out
        assert "not detected" in out

    def test_infeasible_attack_exit_code(self, capsys):
        # Confined + stealthy on the imperfectly cut link 9 is infeasible.
        code = main(
            ["attack", "chosen-victim", "--victims", "9", "--stealthy", "--confined"]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_unknown_attacker_is_error(self, capsys):
        assert main(["attack", "naive", "--attackers", "ghost"]) == 1
        assert "error" in capsys.readouterr().err

    def test_frame_and_blur(self, capsys):
        assert main(["attack", "frame-and-blur", "--victims", "9"]) == 0
        out = capsys.readouterr().out
        assert "frame-and-blur" in out


class TestExperiments:
    def test_fig7_small(self, capsys):
        assert main(["experiment", "fig7", "--trials", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "presence-ratio" in out

    def test_fig8_small(self, capsys):
        assert main(["experiment", "fig8", "--trials", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "max-damage success" in out

    def test_fig9_small(self, capsys):
        assert main(["experiment", "fig9", "--trials", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "detection-ratio" in out


class TestReproduce:
    def test_writes_all_case_studies(self, tmp_path, capsys):
        out_dir = tmp_path / "repro_out"
        assert main(["reproduce", "--out", str(out_dir)]) == 0
        written = {p.name for p in out_dir.iterdir()}
        assert {
            "fig4_chosen_victim.txt",
            "fig5_max_damage.txt",
            "fig6_obfuscation.txt",
            "naive_baseline.txt",
            "loss_chosen_victim.txt",
        } <= written
        fig4 = (out_dir / "fig4_chosen_victim.txt").read_text()
        assert "victim" in fig4
        assert "damage" in fig4
