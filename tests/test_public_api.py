"""Public-API surface tests.

Guards against export drift: everything advertised in ``__all__`` must
resolve, and the runnable docstring examples must stay correct.
"""

import doctest
import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.topology",
            "repro.routing",
            "repro.monitors",
            "repro.metrics",
            "repro.measurement",
            "repro.tomography",
            "repro.attacks",
            "repro.detection",
            "repro.scenarios",
            "repro.reporting",
            "repro.utils",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.utils.rng",
            "repro.topology.graph",
            "repro.routing.paths",
            "repro.measurement.engine",
            "repro.reporting.tables",
        ],
    )
    def test_docstring_examples_run(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
        assert results.attempted > 0, f"expected runnable examples in {module_name}"


class TestReadmeQuickstart:
    def test_readme_quickstart_flow(self):
        """The README's quickstart snippet, executed verbatim in spirit."""
        from repro import ChosenVictimAttack
        from repro.scenarios.simple_network import paper_fig1_scenario

        scenario = paper_fig1_scenario()
        context = scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, victim_links=[9], mode="exclusive").run()
        assert outcome.feasible
        assert outcome.diagnosis.abnormal == (9,)
        assert outcome.damage > 0
        report = scenario.auditor(alpha=200.0).audit(outcome.observed_measurements)
        assert not report.trustworthy
